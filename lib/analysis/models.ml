module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Extract = Flicker_extract.Extract

(* Extraction-IR models of the code each shipped PAL runs, paired with
   the registered Pal.t. The paper's extraction tool works on C via CIL;
   the simulator has no C parser, so these are the structured programs
   CIL would have produced — entry function, statement bodies, types,
   LOC. The analyzer verifies the invariants over them: module lists
   match what the calls imply, secrets are sealed before the output
   page, every secret-handling entry ends by zeroizing, the worst-case
   stack stays inside the 4 KB PAL stack, buffer indices stay in
   bounds, and no branch or memory index depends on a secret. *)

(* body-construction shorthand; [fb] derives the call list from the
   statements (pre-order), keeping it consistent with the slicer *)
let fb fname ?(params = []) stmts uses_types loc =
  Extract.fn fname ~params ~stmts ~uses_types ~loc

let v x = Extract.Var x
let n x = Extract.Num x
let bin op a b = Extract.Bin (op, a, b)
let add = bin Extract.Add
let sub = bin Extract.Sub
let band = bin Extract.Band
let eq = bin Extract.Eq
let load buf index = Extract.Load { buf; index }
let local name elems elem_size = Extract.Local { name; elems; elem_size }
let assign dst src = Extract.Assign { dst; src }
let store buf index src = Extract.Store { buf; index; src }
let call dst callee args = Extract.Call { dst; callee; args }
let if_ cond then_ else_ = Extract.If { cond; then_; else_ }
let for_ var lo hi body = Extract.For { var; lo; hi; body }
let ret e = Extract.Return (Some e)

let ty tname type_depends =
  { Extract.tname; type_depends; definition = Printf.sprintf "struct %s {...};" tname }

let hello_pal =
  lazy (Pal.define ~name:"hello-world" (fun env -> Pal_env.set_output env "Hello, world"))

let hello () =
  {
    Rules.pal = Lazy.force hello_pal;
    program =
      {
        Extract.functions =
          [
            fb "pal_main"
              [
                local "msg" 64 1;
                call (Some "len") "format_greeting" [ n 64 ];
                call None "pal_output_write" [ v "len" ];
              ]
              [ "greeting" ] 10;
            fb "format_greeting" ~params:[ "cap" ]
              [
                local "buf" 32 1;
                for_ "i" (n 0) (n 31) [ store "buf" (v "i") (bin Extract.Mod (v "i") (n 26)) ];
                store "buf" (n 31) (n 0);
                call (Some "r") "strncpy" [ v "cap" ];
                ret (v "r");
              ]
              [ "greeting" ] 6;
          ];
        types = [ ty "greeting" [] ];
      };
    entry = "pal_main";
    budget_loc = 250;
    effects = [];
  }

let rootkit_detector () =
  {
    Rules.pal = Flicker_apps.Rootkit_detector.detector_pal ();
    program =
      {
        Extract.functions =
          [
            fb "detector_main"
              [
                call (Some "len") "read_kernel_text" [ n 0 ];
                call (Some "h") "sha1_region" [ v "len" ];
                call None "pcr_extend_hash" [ v "h" ];
                call None "pal_output_write" [ v "h" ];
              ]
              [ "scan_state" ] 35;
            fb "read_kernel_text" ~params:[ "dst" ]
              [ call (Some "copied") "memcpy" [ v "dst" ]; ret (v "copied") ]
              [ "scan_state" ] 14;
            fb "sha1_region" ~params:[ "len" ]
              [
                local "w" 80 4;
                local "digest" 5 4;
                for_ "i" (n 0) (n 16) [ store "w" (v "i") (v "i") ];
                for_ "i" (n 16) (n 80)
                  [
                    store "w" (v "i")
                      (add (load "w" (sub (v "i") (n 3))) (load "w" (sub (v "i") (n 8))));
                  ];
                call (Some "d") "sha1_compress" [ load "w" (n 0) ];
                for_ "j" (n 0) (n 5) [ store "digest" (v "j") (v "d") ];
                ret (load "digest" (n 0));
              ]
              [ "hash_ctx" ] 48;
            fb "sha1_compress" ~params:[ "block" ]
              [
                local "sched" 16 4;
                assign "a" (n 0x67452301);
                for_ "i" (n 0) (n 16)
                  [
                    store "sched" (v "i") (add (v "a") (v "i"));
                    assign "a" (add (v "a") (load "sched" (v "i")));
                  ];
                ret (v "a");
              ]
              [ "hash_ctx" ] 90;
            fb "pcr_extend_hash" ~params:[ "h" ]
              [ call (Some "rc") "tpm_transmit" [ v "h" ]; ret (v "rc") ]
              [ "hash_ctx" ] 22;
          ];
        types = [ ty "scan_state" []; ty "hash_ctx" [] ];
      };
    entry = "detector_main";
    budget_loc = 350;
    effects = [];
  }

let distcomp () =
  {
    Rules.pal = Flicker_apps.Distcomp.pal ();
    program =
      {
        Extract.functions =
          [
            fb "boinc_main"
              [
                call (Some "wu") "rsa_verify_workunit" [ n 0 ];
                if_ (eq (v "wu") (n 0)) [ ret (n 0) ] [];
                call (Some "state") "TPM_Unseal" [];
                call (Some "fac") "trial_division" [ v "wu" ];
                call (Some "blob") "TPM_Seal" [ add (v "state") (v "fac") ];
                call None "pal_output_write" [ v "fac" ];
                call None "zeroize_secrets" [];
                ret (v "fac");
              ]
              [ "work_unit"; "factor_state" ] 42;
            fb "trial_division" ~params:[ "wu" ]
              [
                assign "fac" (n 0);
                for_ "d" (n 2) (n 1000)
                  [
                    call (Some "r") "mod_reduce" [ v "wu"; v "d" ];
                    if_ (eq (v "r") (n 0)) [ assign "fac" (v "d") ] [];
                  ];
                ret (v "fac");
              ]
              [ "factor_state" ] 30;
            fb "mod_reduce" ~params:[ "x"; "m" ]
              [ ret (bin Extract.Mod (v "x") (v "m")) ]
              [] 12;
          ];
        types = [ ty "work_unit" []; ty "factor_state" [ "work_unit" ] ];
      };
    entry = "boinc_main";
    budget_loc = 3500;
    effects = [];
  }

let ssh_auth () =
  {
    Rules.pal = Flicker_apps.Ssh_auth.ssh_pal ~key_bits:1024;
    program =
      {
        Extract.functions =
          [
            fb "ssh_main"
              [
                call (Some "pw") "sc_decrypt_password" [];
                call (Some "stored") "TPM_Unseal" [];
                call (Some "hash") "md5crypt" [ v "stored"; v "pw" ];
                call (Some "ok") "constant_time_eq" [ v "hash"; v "stored" ];
                if_ (eq (v "ok") (n 1)) [ call None "pal_output_write" [ v "ok" ] ] [];
                call None "zeroize_secrets" [];
                ret (v "ok");
              ]
              [ "auth_ctxt" ] 38;
            fb "md5crypt" ~params:[ "salt"; "pw" ]
              [
                call None "md5_init" [];
                assign "acc" (n 0);
                for_ "round" (n 0) (n 1000)
                  [
                    call (Some "b") "md5_update" [ v "pw" ];
                    assign "acc" (add (v "acc") (v "b"));
                  ];
                call (Some "dig") "md5_final" [ v "acc" ];
                ret (v "dig");
              ]
              [ "md5_ctx" ] 120;
            fb "md5_init" [ ret (n 0) ] [ "md5_ctx" ] 10;
            fb "md5_update" ~params:[ "data" ]
              [
                local "blk" 64 1;
                for_ "i" (n 0) (n 64) [ store "blk" (v "i") (band (v "data") (n 255)) ];
                call (Some "copied") "memcpy" [ load "blk" (n 0) ];
                ret (v "copied");
              ]
              [ "md5_ctx" ] 35;
            fb "md5_final" ~params:[ "acc" ]
              [ assign "state" (n 0x67452301); ret (add (v "state") (v "acc")) ]
              [ "md5_ctx" ] 18;
            fb "constant_time_eq" ~params:[ "a"; "b" ]
              [
                assign "diff" (n 0);
                for_ "i" (n 0) (n 16)
                  [ assign "diff" (add (v "diff") (band (sub (v "a") (v "b")) (n 255))) ];
                ret (eq (v "diff") (n 0));
              ]
              [] 8;
          ];
        types = [ ty "auth_ctxt" [ "passwd_entry" ]; ty "passwd_entry" []; ty "md5_ctx" [] ];
      };
    entry = "ssh_main";
    budget_loc = 3800;
    (* the comparison's boolean verdict is the protocol's public result:
       a deliberate declassification point *)
    effects = [ ("constant_time_eq", Effects.Sanitizer) ];
  }

let cert_authority () =
  {
    Rules.pal = Flicker_apps.Cert_authority.ca_pal ~key_bits:1024;
    program =
      {
        Extract.functions =
          [
            fb "ca_main"
              [
                call (Some "priv") "TPM_Unseal" [];
                call (Some "req") "parse_csr" [ n 0 ];
                call (Some "ok") "check_policy" [ v "req" ];
                if_ (eq (v "ok") (n 0)) [ ret (n 0) ] [];
                call (Some "cert") "sign_certificate" [ v "req"; v "priv" ];
                call None "pal_output_write" [ v "cert" ];
                call None "zeroize_secrets" [];
                ret (v "cert");
              ]
              [ "csr"; "ca_policy" ] 44;
            fb "parse_csr" ~params:[ "raw" ]
              [
                local "fields" 8 8;
                call (Some "len") "memcpy" [ v "raw" ];
                for_ "i" (n 0) (n 8) [ store "fields" (v "i") (add (v "len") (v "i")) ];
                ret (load "fields" (n 0));
              ]
              [ "csr" ] 26;
            fb "check_policy" ~params:[ "req" ]
              [
                call (Some "cmp") "strcmp" [ v "req" ];
                if_ (eq (v "cmp") (n 0)) [ ret (n 1) ] [];
                ret (n 0);
              ]
              [ "ca_policy" ] 18;
            fb "sign_certificate" ~params:[ "req"; "key" ]
              [
                call (Some "d") "sha1_digest" [ v "req" ];
                call (Some "s") "rsa_sign" [ v "d"; v "key" ];
                ret (v "s");
              ]
              [ "csr" ] 33;
          ];
        types = [ ty "csr" [ "subject_key" ]; ty "subject_key" []; ty "ca_policy" [] ];
      };
    entry = "ca_main";
    budget_loc = 3500;
    effects = [];
  }

(* ------------------------------------------------------------------ *)
(* Planted defects: regression targets the analyzer must catch. They   *)
(* are deliberately NOT in [all] — the shipped set stays clean — but   *)
(* are addressable through [find] and exercised by tests, the bench    *)
(* harness, and the CI planted-defect gate.                            *)
(* ------------------------------------------------------------------ *)

let stack_hog_pal = lazy (Pal.define ~name:"planted-stack-hog" (fun _ -> ()))

(* every frame fits, but the chain pal_main -> compress_block ->
   huffman_emit sums past the 4 KB PAL stack; the old 128-bytes/frame
   depth heuristic stays silent at depth 3 *)
let stack_hog () =
  {
    Rules.pal = Lazy.force stack_hog_pal;
    program =
      {
        Extract.functions =
          [
            fb "pal_main"
              [
                local "iobuf" 1024 1;
                for_ "i" (n 0) (n 1024) [ store "iobuf" (v "i") (band (v "i") (n 255)) ];
                call (Some "z") "compress_block" [ load "iobuf" (n 0) ];
                call None "pal_output_write" [ v "z" ];
              ]
              [] 20;
            fb "compress_block" ~params:[ "seed" ]
              [
                local "window" 2048 1;
                for_ "i" (n 0) (n 2048)
                  [ store "window" (v "i") (band (add (v "seed") (v "i")) (n 255)) ];
                call (Some "bits") "huffman_emit" [ load "window" (n 0) ];
                ret (v "bits");
              ]
              [] 30;
            fb "huffman_emit" ~params:[ "sym" ]
              [
                local "table" 1200 1;
                for_ "i" (n 0) (n 1200) [ store "table" (v "i") (v "i") ];
                ret (load "table" (band (v "sym") (n 1023)));
              ]
              [] 25;
          ];
        types = [];
      };
    entry = "pal_main";
    budget_loc = 400;
    effects = [];
  }

let secret_branch_pal =
  lazy
    (Pal.define ~name:"planted-secret-branch"
       ~modules:[ Pal.Tpm_driver; Pal.Tpm_utilities ]
       (fun _ -> ()))

(* the unsealed PIN steers a branch in auth_main and indexes the sbox
   in pin_compare: two classic timing side channels. The seal/zeroize
   discipline is respected, so only the constant-time lint objects. *)
let secret_branch () =
  {
    Rules.pal = Lazy.force secret_branch_pal;
    program =
      {
        Extract.functions =
          [
            fb "auth_main"
              [
                call (Some "pin") "TPM_Unseal" [];
                call (Some "ok") "pin_compare" [ v "pin" ];
                if_ (eq (v "ok") (n 0)) [ assign "code" (n 0) ] [ assign "code" (n 1) ];
                call (Some "blob") "TPM_Seal" [ v "pin" ];
                call None "pal_output_write" [ v "code" ];
                call None "zeroize_secrets" [];
                ret (v "code");
              ]
              [] 28;
            fb "pin_compare" ~params:[ "pin" ]
              [
                local "sbox" 256 1;
                for_ "i" (n 0) (n 256) [ store "sbox" (v "i") (band (v "i") (n 255)) ];
                assign "t" (load "sbox" (band (v "pin") (n 255)));
                ret (bin Extract.Ne (v "t") (n 7));
              ]
              [] 22;
          ];
        types = [];
      };
    entry = "auth_main";
    budget_loc = 3500;
    effects = [];
  }

let all () =
  [
    ("hello", hello ());
    ("rootkit", rootkit_detector ());
    ("boinc", distcomp ());
    ("ssh", ssh_auth ());
    ("ca", cert_authority ());
  ]

let planted () = [ ("stack-hog", stack_hog ()); ("secret-branch", secret_branch ()) ]
let keys () = List.map fst (all ())
let planted_keys () = List.map fst (planted ())
let find key =
  match List.assoc_opt key (all ()) with
  | Some t -> Some t
  | None -> List.assoc_opt key (planted ())
