module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Extract = Flicker_extract.Extract

(* Extraction-IR models of the code each shipped PAL runs, paired with
   the registered Pal.t. The paper's extraction tool works on C via CIL;
   the simulator has no C parser, so these are the structured programs
   CIL would have produced — entry function, ordered calls, types, LOC.
   The analyzer verifies the invariants over them: module lists match
   what the calls imply, secrets are sealed before the output page, and
   every secret-handling entry ends by zeroizing. *)

let f fname calls uses_types loc =
  { Extract.fname; calls; uses_types; body = Printf.sprintf "/* %s: %d LOC */" fname loc; loc }

let ty tname type_depends =
  { Extract.tname; type_depends; definition = Printf.sprintf "struct %s {...};" tname }

let hello_pal =
  lazy (Pal.define ~name:"hello-world" (fun env -> Pal_env.set_output env "Hello, world"))

let hello () =
  {
    Rules.pal = Lazy.force hello_pal;
    program =
      {
        Extract.functions =
          [
            f "pal_main" [ "format_greeting"; "pal_output_write" ] [ "greeting" ] 10;
            f "format_greeting" [ "strncpy" ] [ "greeting" ] 6;
          ];
        types = [ ty "greeting" [] ];
      };
    entry = "pal_main";
    budget_loc = 250;
    effects = [];
  }

let rootkit_detector () =
  {
    Rules.pal = Flicker_apps.Rootkit_detector.detector_pal ();
    program =
      {
        Extract.functions =
          [
            f "detector_main"
              [ "read_kernel_text"; "sha1_region"; "pcr_extend_hash"; "pal_output_write" ]
              [ "scan_state" ] 35;
            f "read_kernel_text" [ "memcpy" ] [ "scan_state" ] 14;
            f "sha1_region" [ "sha1_compress" ] [ "hash_ctx" ] 48;
            f "sha1_compress" [] [ "hash_ctx" ] 90;
            f "pcr_extend_hash" [ "tpm_transmit" ] [ "hash_ctx" ] 22;
          ];
        types = [ ty "scan_state" []; ty "hash_ctx" [] ];
      };
    entry = "detector_main";
    budget_loc = 350;
    effects = [];
  }

let distcomp () =
  {
    Rules.pal = Flicker_apps.Distcomp.pal ();
    program =
      {
        Extract.functions =
          [
            f "boinc_main"
              [
                "rsa_verify_workunit";
                "TPM_Unseal";
                "trial_division";
                "TPM_Seal";
                "pal_output_write";
                "zeroize_secrets";
              ]
              [ "work_unit"; "factor_state" ] 42;
            f "trial_division" [ "mod_reduce" ] [ "factor_state" ] 30;
            f "mod_reduce" [] [] 12;
          ];
        types = [ ty "work_unit" []; ty "factor_state" [ "work_unit" ] ];
      };
    entry = "boinc_main";
    budget_loc = 3500;
    effects = [];
  }

let ssh_auth () =
  {
    Rules.pal = Flicker_apps.Ssh_auth.ssh_pal ~key_bits:1024;
    program =
      {
        Extract.functions =
          [
            f "ssh_main"
              [
                "sc_decrypt_password";
                "TPM_Unseal";
                "md5crypt";
                "constant_time_eq";
                "pal_output_write";
                "zeroize_secrets";
              ]
              [ "auth_ctxt" ] 38;
            f "md5crypt" [ "md5_init"; "md5_update"; "md5_final" ] [ "md5_ctx" ] 120;
            f "md5_init" [] [ "md5_ctx" ] 10;
            f "md5_update" [ "memcpy" ] [ "md5_ctx" ] 35;
            f "md5_final" [] [ "md5_ctx" ] 18;
            f "constant_time_eq" [] [] 8;
          ];
        types = [ ty "auth_ctxt" [ "passwd_entry" ]; ty "passwd_entry" []; ty "md5_ctx" [] ];
      };
    entry = "ssh_main";
    budget_loc = 3800;
    (* the comparison's boolean verdict is the protocol's public result:
       a deliberate declassification point *)
    effects = [ ("constant_time_eq", Effects.Sanitizer) ];
  }

let cert_authority () =
  {
    Rules.pal = Flicker_apps.Cert_authority.ca_pal ~key_bits:1024;
    program =
      {
        Extract.functions =
          [
            f "ca_main"
              [
                "TPM_Unseal";
                "parse_csr";
                "check_policy";
                "sign_certificate";
                "pal_output_write";
                "zeroize_secrets";
              ]
              [ "csr"; "ca_policy" ] 44;
            f "parse_csr" [ "memcpy" ] [ "csr" ] 26;
            f "check_policy" [ "strcmp" ] [ "ca_policy" ] 18;
            f "sign_certificate" [ "sha1_digest"; "rsa_sign" ] [ "csr" ] 33;
          ];
        types = [ ty "csr" [ "subject_key" ]; ty "subject_key" []; ty "ca_policy" [] ];
      };
    entry = "ca_main";
    budget_loc = 3500;
    effects = [];
  }

let all () =
  [
    ("hello", hello ());
    ("rootkit", rootkit_detector ());
    ("boinc", distcomp ());
    ("ssh", ssh_auth ());
    ("ca", cert_authority ());
  ]

let keys () = List.map fst (all ())

let find key = List.assoc_opt key (all ())
