(** Abstract domains for the PAL abstract interpreter ({!Absint}).

    [Interval] is the classic integer-interval lattice with saturating
    arithmetic ([min_int]/[max_int] play the infinities) and the
    standard widening (a bound that moved since the previous iterate
    jumps to its infinity) — enough to bound loop counters, buffer
    indices, and stack frames. [Secrecy] is the two-point taint lattice
    labelled with the originating secret source, joined with control
    dependence by the constant-time lint. [Env] is a pointwise-lifted
    string-keyed map shared by both clients. *)

module Interval : sig
  type t = private { lo : int; hi : int }
  (** Invariant: [lo <= hi]. [min_int]/[max_int] are -oo/+oo. *)

  val top : t
  val of_int : int -> t

  val range : int -> int -> t
  (** [range lo hi] with the bounds swapped into order. *)

  val join : t -> t -> t
  val widen : t -> t -> t
  (** [widen old next]: bounds of [next] that escaped [old] jump to the
      corresponding infinity, guaranteeing fixpoint termination. *)

  val contains : t -> int -> bool
  val subset : t -> t -> bool
  val equal : t -> t -> bool
  val is_top : t -> bool

  val binop : Flicker_extract.Extract.binop -> t -> t -> t
  (** Sound transfer for the mini-IR operators: saturating add/sub/mul,
      total division ([x/0 = 0], matching the concrete semantics),
      comparisons into [0,1], and bitwise AND bounded by a non-negative
      operand. *)

  val to_string : t -> string
  (** e.g. ["[0, 79]"], with [-oo]/[+oo] for the infinities. *)
end

module Secrecy : sig
  type t = string option
  (** [None]: public. [Some src]: influenced by the secret produced by
      effects source [src] (the first source reached labels the value —
      enough to name the offender in a finding). *)

  val public : t
  val join : t -> t -> t
  val equal : t -> t -> bool
  val is_secret : t -> bool
end

module Env : sig
  type 'a t
  (** Finite map from variable/buffer names to an abstract value; keys
      not present are at the client-supplied [default] (top for
      intervals — an uninitialized C local holds anything — and public
      for secrecy). *)

  val empty : 'a t
  val get : default:'a -> 'a t -> string -> 'a
  val set : 'a t -> string -> 'a -> 'a t

  val merge : f:('a -> 'a -> 'a) -> default:'a -> 'a t -> 'a t -> 'a t
  (** Pointwise [f] over the union of the key sets, reading [default]
      for a key missing on one side. Used for both join and widen. *)

  val equal : eq:('a -> 'a -> bool) -> default:'a -> 'a t -> 'a t -> bool
  val bindings : 'a t -> (string * 'a) list
end
