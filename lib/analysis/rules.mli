(** The PAL verifier's rule registry and driver.

    A [target] pairs a registered {!Flicker_slb.Pal.t} with the
    extraction-IR program modeling its code, the entry function, a
    declared TCB budget, and per-PAL effects annotations. [run] slices
    the program, builds the call graph, and evaluates every rule,
    returning findings in the canonical export order (rule id, then
    subject function, then location).

    Rule classes (the ISSUE's six, plus supporting ones):
    - [recursion] (error): call cycles on the fixed 4 KB PAL stack
    - [stack-depth] (warning): deep acyclic chains nearing the stack
    - [secret-leak] (error): source->sink flow with no sanitizer
    - [missing-zeroize] (error): secrets not erased before teardown
    - [tcb-budget] (error): [Pal.total_loc] over the declared budget
    - [slb-region] (error/warning): linked code vs the 64 KB region
    - [unnecessary-module] (warning): linked but not implied by the slice
    - [missing-module] (error): implied by the slice but not linked
    - [forbidden-call] (error): needs the OS (sockets, fork, time-of-day)
    - [eliminate-call] (warning): printf-family calls
    - [unresolved-callee] (warning): undefined, unrecognized callees
    - [dead-function] (info): defined but unreachable from the entry

    Abstract-interpretation-backed classes (proofs over {!Absint}):
    - [stack-bound] (error): proved worst-case stack over the 4 KB PAL
      stack, with the deepest call chain
    - [buffer-bounds] (error): abstract buffer index escapes the
      declared element count
    - [secret-branch] (error): branch condition or loop bound
      influenced by an effects source (timing side channel)
    - [secret-index] (error): memory access indexed by a secret
    - [duplicate-definition] (warning): a function defined twice, the
      later definition silently shadowed by the slicer *)

module Pal = Flicker_slb.Pal
module Extract = Flicker_extract.Extract

type severity = Info | Warning | Error

val severity_name : severity -> string
val severity_rank : severity -> int
(** 0 = most severe; used for ordering. *)

type finding = {
  rule : string;
  severity : severity;
  subject : string;  (** the offending function, module, or callee *)
  location : string;  (** site within the subject (chain, expression, or
                          buffer range); [""] when not applicable *)
  message : string;
}

type target = {
  pal : Pal.t;
  program : Extract.program;  (** extraction-IR model of the PAL's code *)
  entry : string;  (** the PAL's entry function in [program] *)
  budget_loc : int;  (** declared TCB budget ([Pal.total_loc] must fit) *)
  effects : (string * Effects.effect_class) list;  (** per-PAL annotations *)
}

type ctx = {
  target : target;
  graph : Callgraph.t;
  extraction : Extract.extraction;
  table : Effects.table;
  absint : Absint.result Lazy.t;
      (** shared abstract-interpretation results, forced by the first
          rule that needs them *)
}

type rule = { id : string; title : string; severity : severity; check : ctx -> finding list }

val rules : rule list
val find_rule : string -> rule option

val module_requires : Pal.module_kind -> Pal.module_kind list
(** Inter-module dependencies used when deciding whether a linked module
    is implied by the slice. *)

val implied_modules : Extract.extraction -> Pal.module_kind list
(** [suggested_modules] closed under {!module_requires}. *)

val run : ?index:Extract.index -> target -> (finding list, string) result
(** Evaluate every rule. [Error] only when the entry function is not
    defined in the program. [index] is a prebuilt {!Extract.index} over
    [target.program]; pass it when analyzing several PALs that share one
    program so the per-run slice reuses the index instead of rebuilding
    it (the CLI's [analyze] and the analysis bench do this). *)

val compare_findings : finding -> finding -> int
(** The canonical export order: (rule id, subject, location, message). *)

val count : severity -> finding list -> int
val errors : finding list -> int
val warnings : finding list -> int

val should_fail : ?strict:bool -> finding list -> bool
(** Admission/exit-code policy: any error fails; with [strict] warnings
    fail too. *)
