module Pal = Flicker_slb.Pal
module Layout = Flicker_slb.Layout
module Slb_core = Flicker_slb.Slb_core
module Extract = Flicker_extract.Extract

type severity = Info | Warning | Error

let severity_name = function Info -> "info" | Warning -> "warning" | Error -> "error"
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type finding = {
  rule : string;
  severity : severity;
  subject : string;
  location : string;  (* offending site within the subject; "" when n/a *)
  message : string;
}

type target = {
  pal : Pal.t;
  program : Extract.program;
  entry : string;
  budget_loc : int;
  effects : (string * Effects.effect_class) list;
}

type ctx = {
  target : target;
  graph : Callgraph.t;
  extraction : Extract.extraction;
  table : Effects.table;
  absint : Absint.result Lazy.t;
      (* both abstract-interpretation clients, forced on first use *)
}

type rule = { id : string; title : string; severity : severity; check : ctx -> finding list }

(* estimated worst-case frame: saved registers + a small locals window,
   conservative for the freestanding C a PAL is built from *)
let frame_bytes = 128

(* Which optional modules a module itself depends on: the utilities sit
   on the driver; the secure channel generates, seals, and uses keys. *)
let module_requires = function
  | Pal.Tpm_utilities -> [ Pal.Tpm_driver ]
  | Pal.Secure_channel -> [ Pal.Tpm_utilities; Pal.Crypto ]
  | Pal.Os_protection | Pal.Tpm_driver | Pal.Crypto | Pal.Memory_management -> []

let implied_modules extraction =
  let rec close acc = function
    | [] -> acc
    | m :: rest ->
        if List.mem m acc then close acc rest
        else close (m :: acc) (module_requires m @ rest)
  in
  List.sort_uniq compare (close [] (Extract.suggested_modules extraction))

let module_name m = (Pal.info m).Pal.module_name

let recursion_rule =
  {
    id = "recursion";
    title = "recursive call cycle on the fixed PAL stack";
    severity = Error;
    check =
      (fun ctx ->
        let reach = Callgraph.reachable ctx.graph ~root:ctx.target.entry in
        List.filter_map
          (fun group ->
            if List.exists (fun n -> List.mem n reach) group then
              Some
                {
                  rule = "recursion";
                  severity = Error;
                  subject = String.concat " -> " group;
                  location = "";
                  message =
                    Printf.sprintf
                      "call cycle {%s} can recurse; the PAL stack is a fixed %d bytes \
                       and cannot grow"
                      (String.concat ", " group) Layout.stack_size;
                }
            else None)
          (Callgraph.recursive_groups ctx.graph));
  }

let stack_depth_rule =
  {
    id = "stack-depth";
    title = "worst-case call depth approaches the PAL stack";
    severity = Warning;
    check =
      (fun ctx ->
        match Callgraph.max_depth ctx.graph ~root:ctx.target.entry with
        | None -> [] (* unbounded: the recursion rule already fired *)
        | Some depth ->
            let worst = depth * frame_bytes in
            if worst > Layout.stack_size then
              [
                {
                  rule = "stack-depth";
                  severity = Warning;
                  subject = ctx.target.entry;
                  location = "";
                  message =
                    Printf.sprintf
                      "worst-case call depth %d (~%d bytes at %d bytes/frame) exceeds \
                       the %d-byte PAL stack"
                      depth worst frame_bytes Layout.stack_size;
                };
              ]
            else []);
  }

let secret_leak_rule =
  {
    id = "secret-leak";
    title = "secret reaches a sink without sealing/encryption";
    severity = Error;
    check =
      (fun ctx ->
        List.map
          (fun l ->
            {
              rule = "secret-leak";
              severity = Error;
              subject = l.Taint.in_function;
              location = "";
              message =
                Printf.sprintf
                  "secret from %s can reach sink %s in %s with no sanitizer on the \
                   path; seal or encrypt before it leaves the SLB (Section 4.3)"
                  l.Taint.source l.Taint.sink l.Taint.in_function;
            })
          (Taint.analyze ~table:ctx.table ctx.graph ~entry:ctx.target.entry));
  }

let missing_zeroize_rule =
  {
    id = "missing-zeroize";
    title = "secrets produced but not zeroized before exit";
    severity = Error;
    check =
      (fun ctx ->
        let table = ctx.table in
        if
          Taint.has_secret_source ~table ctx.graph ~entry:ctx.target.entry
          && not (Taint.ends_with_zeroize ~table ctx.graph ~entry:ctx.target.entry)
        then
          [
            {
              rule = "missing-zeroize";
              severity = Error;
              subject = ctx.target.entry;
              location = "";
              message =
                "the slice handles secrets but the entry does not end by zeroizing \
                 them; Flicker requires erasing all secrets before session teardown \
                 (Section 5.1)";
            };
          ]
        else []);
  }

let tcb_budget_rule =
  {
    id = "tcb-budget";
    title = "TCB lines of code over the declared budget";
    severity = Error;
    check =
      (fun ctx ->
        let loc = Pal.total_loc ctx.target.pal in
        if loc > ctx.target.budget_loc then
          [
            {
              rule = "tcb-budget";
              severity = Error;
              subject = ctx.target.pal.Pal.name;
              location = "";
              message =
                Printf.sprintf
                  "TCB is %d LOC against a declared budget of %d; drop a module or \
                   raise the budget deliberately"
                  loc ctx.target.budget_loc;
            };
          ]
        else []);
  }

let slb_region_rule =
  {
    id = "slb-region";
    title = "linked code against the 64 KB SLB region";
    severity = Error;
    check =
      (fun ctx ->
        let size = String.length (Pal.linked_code ctx.target.pal) in
        let limit = Layout.max_pal_code ~slb_core_size:Slb_core.core_size in
        if size > limit then
          [
            {
              rule = "slb-region";
              severity = Error;
              subject = ctx.target.pal.Pal.name;
              location = "";
              message =
                Printf.sprintf
                  "linked code is %d bytes but only %d fit in the SLB's PAL region \
                   (SKINIT measures at most 64 KB)"
                  size limit;
            };
          ]
        else if size * 10 > limit * 9 then
          [
            {
              rule = "slb-region";
              severity = Warning;
              subject = ctx.target.pal.Pal.name;
              location = "";
              message =
                Printf.sprintf "linked code is %d of %d bytes (over 90%% of the PAL region)"
                  size limit;
            };
          ]
        else []);
  }

let unnecessary_module_rule =
  {
    id = "unnecessary-module";
    title = "linked module not implied by the slice";
    severity = Warning;
    check =
      (fun ctx ->
        let implied = implied_modules ctx.extraction in
        List.filter_map
          (fun m ->
            (* ring-3 confinement is a policy choice, never call-implied *)
            if m = Pal.Os_protection || List.mem m implied then None
            else
              Some
                {
                  rule = "unnecessary-module";
                  severity = Warning;
                  subject = module_name m;
                  location = "";
                  message =
                    Printf.sprintf
                      "module %s (%d LOC) is linked but nothing in the slice needs it: \
                       unnecessary TCB"
                      (module_name m) (Pal.info m).Pal.loc;
                })
          ctx.target.pal.Pal.modules);
  }

let missing_module_rule =
  {
    id = "missing-module";
    title = "slice needs a module that is not linked";
    severity = Error;
    check =
      (fun ctx ->
        let linked = ctx.target.pal.Pal.modules in
        List.filter_map
          (fun m ->
            if List.mem m linked then None
            else
              Some
                {
                  rule = "missing-module";
                  severity = Error;
                  subject = module_name m;
                  location = "";
                  message =
                    Printf.sprintf
                      "the slice calls into %s but the PAL does not link it; the call \
                       would land in unmeasured memory"
                      (module_name m);
                })
          (implied_modules ctx.extraction));
  }

let forbidden_call_rule =
  {
    id = "forbidden-call";
    title = "call that cannot exist inside a PAL";
    severity = Error;
    check =
      (fun ctx ->
        List.filter_map
          (fun (name, advice) ->
            match advice with
            | Extract.Forbidden why ->
                Some
                  { rule = "forbidden-call"; severity = Error; subject = name; location = ""; message = why }
            | _ -> None)
          ctx.extraction.Extract.stdlib_calls);
  }

let eliminate_call_rule =
  {
    id = "eliminate-call";
    title = "call that should be eliminated";
    severity = Warning;
    check =
      (fun ctx ->
        List.filter_map
          (fun (name, advice) ->
            match advice with
            | Extract.Eliminate ->
                Some
                  {
                    rule = "eliminate-call";
                    severity = Warning;
                    subject = name;
                    location = "";
                    message =
                      name ^ " makes no sense inside a PAL; eliminate the call \
                              (Section 5.2)";
                  }
            | _ -> None)
          ctx.extraction.Extract.stdlib_calls);
  }

let unresolved_callee_rule =
  {
    id = "unresolved-callee";
    title = "callee neither defined nor known stdlib";
    severity = Warning;
    check =
      (fun ctx ->
        List.map
          (fun name ->
            {
              rule = "unresolved-callee";
              severity = Warning;
              subject = name;
              location = "";
              message =
                name
                ^ " is called but neither defined nor a recognized library function; \
                   supply an implementation or the PAL will not link";
            })
          ctx.extraction.Extract.unresolved);
  }

let dead_function_rule =
  {
    id = "dead-function";
    title = "defined function unreachable from the entry";
    severity = Info;
    check =
      (fun ctx ->
        List.map
          (fun name ->
            {
              rule = "dead-function";
              severity = Info;
              subject = name;
              location = "";
              message =
                name
                ^ " is defined in the program but unreachable from the entry; it \
                   would ride along as dead TCB if carried into the PAL";
            })
          (Callgraph.unreachable ctx.graph ~root:ctx.target.entry));
  }

(* ---- abstract-interpretation-backed rules (Absint clients) ---- *)

let stack_bound_rule =
  {
    id = "stack-bound";
    title = "proved worst-case stack exceeds the 4 KB PAL stack";
    severity = Error;
    check =
      (fun ctx ->
        let r = Lazy.force ctx.absint in
        match r.Absint.stack with
        | Absint.Unbounded -> [] (* the recursion rule already fired *)
        | Absint.Bounded bytes when bytes > Layout.stack_size ->
            let chain = String.concat " -> " r.Absint.worst_chain in
            [
              {
                rule = "stack-bound";
                severity = Error;
                subject = ctx.target.entry;
                location = chain;
                message =
                  Printf.sprintf
                    "proved worst-case stack is %d bytes but the PAL stack is a fixed \
                     %d; deepest chain: %s"
                    bytes Layout.stack_size chain;
              };
            ]
        | Absint.Bounded _ -> []);
  }

let buffer_bounds_rule =
  {
    id = "buffer-bounds";
    title = "buffer access can go out of bounds";
    severity = Error;
    check =
      (fun ctx ->
        let r = Lazy.force ctx.absint in
        List.map
          (fun (v : Absint.bounds_violation) ->
            {
              rule = "buffer-bounds";
              severity = Error;
              subject = v.Absint.in_function;
              location =
                Printf.sprintf "%s%s" v.Absint.buffer
                  (Domains.Interval.to_string v.Absint.index);
              message =
                Printf.sprintf
                  "%s of %s (%d elements) in %s with abstract index %s escapes the \
                   declared bounds"
                  (if v.Absint.is_write then "write" else "read")
                  v.Absint.buffer v.Absint.size_elems v.Absint.in_function
                  (Domains.Interval.to_string v.Absint.index);
            })
          r.Absint.bounds);
  }

let ct_finding (v : Absint.ct_violation) =
  let rule =
    match v.Absint.kind with
    | Absint.Branch | Absint.Loop_bound -> "secret-branch"
    | Absint.Index -> "secret-index"
  in
  {
    rule;
    severity = Error;
    subject = v.Absint.ct_function;
    location = v.Absint.detail;
    message =
      Printf.sprintf
        "%s depends on a secret from %s: %s in %s executes in secret-dependent time; \
         make it constant-time or declassify deliberately via an effects override"
        (Absint.ct_kind_name v.Absint.kind)
        v.Absint.source v.Absint.detail v.Absint.ct_function;
  }

let secret_branch_rule =
  {
    id = "secret-branch";
    title = "branch or loop bound influenced by a secret";
    severity = Error;
    check =
      (fun ctx ->
        let r = Lazy.force ctx.absint in
        List.filter_map
          (fun (v : Absint.ct_violation) ->
            match v.Absint.kind with
            | Absint.Branch | Absint.Loop_bound -> Some (ct_finding v)
            | Absint.Index -> None)
          r.Absint.ct);
  }

let secret_index_rule =
  {
    id = "secret-index";
    title = "memory access indexed by a secret";
    severity = Error;
    check =
      (fun ctx ->
        let r = Lazy.force ctx.absint in
        List.filter_map
          (fun (v : Absint.ct_violation) ->
            match v.Absint.kind with
            | Absint.Index -> Some (ct_finding v)
            | Absint.Branch | Absint.Loop_bound -> None)
          r.Absint.ct);
  }

let duplicate_definition_rule =
  {
    id = "duplicate-definition";
    title = "function defined more than once";
    severity = Warning;
    check =
      (fun ctx ->
        let seen : (string, int * Extract.func) Hashtbl.t = Hashtbl.create 8 in
        List.concat
          (List.mapi
             (fun i (f : Extract.func) ->
               match Hashtbl.find_opt seen f.Extract.fname with
               | None ->
                   Hashtbl.add seen f.Extract.fname (i, f);
                   []
               | Some (j, first) ->
                   [
                     {
                       rule = "duplicate-definition";
                       severity = Warning;
                       subject = f.Extract.fname;
                       location = Printf.sprintf "definitions #%d and #%d" (j + 1) (i + 1);
                       message =
                         Printf.sprintf
                           "%s is defined more than once: the slicer keeps definition \
                            #%d (%d LOC) and definition #%d (%d LOC) is silently \
                            shadowed"
                           f.Extract.fname (j + 1) first.Extract.loc (i + 1)
                           f.Extract.loc;
                     };
                   ])
             ctx.target.program.Extract.functions));
  }

let rules =
  [
    recursion_rule;
    stack_depth_rule;
    stack_bound_rule;
    buffer_bounds_rule;
    secret_branch_rule;
    secret_index_rule;
    duplicate_definition_rule;
    secret_leak_rule;
    missing_zeroize_rule;
    tcb_budget_rule;
    slb_region_rule;
    unnecessary_module_rule;
    missing_module_rule;
    forbidden_call_rule;
    eliminate_call_rule;
    unresolved_callee_rule;
    dead_function_rule;
  ]

let find_rule id = List.find_opt (fun r -> r.id = id) rules

let make_ctx ?index target =
  let index =
    match index with Some i -> i | None -> Extract.index target.program
  in
  match Extract.extract ~index target.program ~target:target.entry with
  | Result.Error msg -> Result.Error msg
  | Result.Ok extraction ->
      let graph = Callgraph.build target.program in
      let table = Effects.make target.effects in
      Result.Ok
        {
          target;
          graph;
          extraction;
          table;
          absint = lazy (Absint.analyze ~table graph ~entry:target.entry);
        }

(* canonical export order: rule id, then function (subject), then
   location, then message — the CLI additionally orders PALs by key, so
   merged text/SARIF output is sorted by (pal, rule, function, location) *)
let compare_findings (a : finding) (b : finding) =
  match compare a.rule b.rule with
  | 0 -> (
      match compare a.subject b.subject with
      | 0 -> (
          match compare a.location b.location with
          | 0 -> compare a.message b.message
          | c -> c)
      | c -> c)
  | c -> c

let run ?index target =
  match make_ctx ?index target with
  | Result.Error msg -> Result.Error msg
  | Result.Ok ctx ->
      let findings = List.concat_map (fun r -> r.check ctx) rules in
      Result.Ok (List.stable_sort compare_findings findings)

let count sev findings =
  List.length (List.filter (fun (f : finding) -> f.severity = sev) findings)
let errors findings = count Error findings
let warnings findings = count Warning findings

let should_fail ?(strict = false) findings =
  errors findings > 0 || (strict && warnings findings > 0)
