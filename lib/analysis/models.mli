(** Analysis targets for the five shipped paper PALs: rootkit detector,
    distributed computing (BOINC factoring), SSH password auth,
    certificate authority, and the hello-world quickstart. Each pairs
    the registered {!Flicker_slb.Pal.t} with the extraction-IR program
    modeling its code (entry, statement bodies, types, LOC) and a
    declared TCB budget.

    Two additional {e planted-defect} targets exercise the abstract
    interpreter: [stack-hog] (per-frame sizes fine, whole-chain stack
    over 4 KB) and [secret-branch] (unsealed secret steers a branch and
    indexes a table). They are kept out of {!all} — the shipped set
    must analyze clean — but resolve through {!find}. *)

val hello : unit -> Rules.target
val rootkit_detector : unit -> Rules.target
val distcomp : unit -> Rules.target
val ssh_auth : unit -> Rules.target
val cert_authority : unit -> Rules.target

val stack_hog : unit -> Rules.target
val secret_branch : unit -> Rules.target

val all : unit -> (string * Rules.target) list
(** Key/target pairs, keys: hello, rootkit, boinc, ssh, ca. *)

val planted : unit -> (string * Rules.target) list
(** Planted-defect key/target pairs, keys: stack-hog, secret-branch. *)

val keys : unit -> string list
val planted_keys : unit -> string list

val find : string -> Rules.target option
(** Looks up shipped keys first, then planted ones. *)
