(** Analysis targets for the five shipped paper PALs: rootkit detector,
    distributed computing (BOINC factoring), SSH password auth,
    certificate authority, and the hello-world quickstart. Each pairs
    the registered {!Flicker_slb.Pal.t} with the extraction-IR program
    modeling its code (entry, ordered calls, types, LOC) and a declared
    TCB budget. *)

val hello : unit -> Rules.target
val rootkit_detector : unit -> Rules.target
val distcomp : unit -> Rules.target
val ssh_auth : unit -> Rules.target
val cert_authority : unit -> Rules.target

val all : unit -> (string * Rules.target) list
(** Key/target pairs, keys: hello, rootkit, boinc, ssh, ca. *)

val keys : unit -> string list
val find : string -> Rules.target option
