(** Work-list abstract interpretation over the extraction mini-IR.

    Two client analyses run on {!Domains} lattices over the structured
    statement bodies ({!Flicker_extract.Extract.stmt}):

    - an {b interval + frame-size pass}: per-function worst-case stack
      frames (declared local arrays plus one word per scalar) and
      buffer-index ranges, composed over the call graph by a work-list
      fixpoint into a whole-PAL worst-case stack bound — checked by the
      rules layer against the 4 KB PAL stack — and out-of-bounds
      accesses against declared buffer sizes;
    - a {b constant-time lint}: the taint lattice joined with control
      dependence (a pc label) and memory dependence (per-buffer labels),
      run to an interprocedural fixpoint over per-parameter contexts and
      return summaries, flagging secret-influenced branch conditions,
      loop bounds, and memory-access indices. Per-PAL effects overrides
      apply: a function annotated as a {!Effects.Sanitizer} declassifies
      its result at every call site.

    Functions with an empty [stmts] list (shape-only IR) are opaque:
    they cost a fixed conservative frame, return public values, and
    contribute no findings — the pre-mini-IR behavior. *)

module Extract = Flicker_extract.Extract

val opaque_frame_bytes : int
(** Conservative frame charged for externals and shape-only functions
    (matches the rules layer's historical per-frame heuristic). *)

val frame_bytes : Extract.func -> int
(** Worst-case frame: base bookkeeping + declared local arrays + one
    word per distinct scalar (parameters and assignment/loop targets);
    [opaque_frame_bytes] for shape-only functions. *)

type stack_bound = Bounded of int | Unbounded

type bounds_violation = {
  in_function : string;
  buffer : string;
  size_elems : int;
  index : Domains.Interval.t;  (** the offending abstract index range *)
  is_write : bool;
}

type ct_kind = Branch | Loop_bound | Index

type ct_violation = {
  ct_function : string;
  kind : ct_kind;
  source : string;  (** the effects source the secret originated from *)
  detail : string;  (** the offending expression, rendered *)
}

val ct_kind_name : ct_kind -> string

type result = {
  frames : (string * int) list;
      (** per reachable defined function, in reachability preorder *)
  stack : stack_bound;
      (** whole-PAL worst-case stack bytes from the entry; [Unbounded]
          when recursion is reachable (the recursion rule fires too) *)
  worst_chain : string list;
      (** the call chain realizing the bound, entry first; ends with an
          external callee when that frame is the worst leaf *)
  bounds : bounds_violation list;  (** sorted, deduplicated *)
  ct : ct_violation list;  (** sorted, deduplicated *)
  index_hulls : ((string * string) * Domains.Interval.t) list;
      (** per (function, buffer): join of every abstract index range
          used to access the buffer — the envelope the soundness
          property checks concrete runs against *)
}

val analyze : table:Effects.table -> Callgraph.t -> entry:string -> result
(** Run both passes over the functions reachable from [entry]. An
    undefined entry yields the empty result ([Bounded 0], no findings). *)

(** Deterministic concrete interpreter of the same semantics, used by
    the QCheck soundness property: every observed stack depth and
    buffer index must fall inside {!analyze}'s abstractions. Arithmetic
    saturates at the int boundaries (mirroring the interval transfer
    functions), division/modulo by zero yield 0, uninitialized scalars
    read 0, externals and shape-only callees return 0. *)
module Concrete : sig
  type access = {
    in_function : string;
    buffer : string;
    index : int;
    within : bool;  (** index fell inside the declared element count *)
  }

  type obs = {
    max_stack_bytes : int;
    accesses : access list;  (** in execution order *)
    out_of_fuel : bool;  (** stopped at the step budget (observations
                             up to that point are still valid) *)
  }

  val run : ?max_steps:int -> ?args:int list -> Callgraph.t -> entry:string -> obs
  (** Execute [entry] (parameters bound to [args], default all 0) with
      a step budget (default 200_000). *)
end
