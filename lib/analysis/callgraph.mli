(** Indexed call graph over the extraction IR.

    Nodes are the program's defined functions (first definition wins,
    matching the slicer); edges keep the body's call order, which the
    taint pass relies on. Undefined callees stay as [External] names —
    they are the stdlib/TPM/PAL-primitive surface the advice table and
    effects table classify. *)

module Extract = Flicker_extract.Extract

type callee = Defined of int | External of string
type t

val build : Extract.program -> t

val node_count : t -> int
val name : t -> int -> string
val func : t -> int -> Extract.func
val id : t -> string -> int option
val calls : t -> int -> callee array
(** The function's callees in body order (duplicates preserved). *)

val defined_callees : t -> int -> int list
val external_callees : t -> int -> string list

val reachable : t -> root:string -> string list
(** Defined functions reachable from [root] (inclusive), preorder.
    Empty when [root] is undefined. *)

val unreachable : t -> root:string -> string list
(** Defined functions NOT reachable from [root]: dead code that would
    ride along in the PAL image. *)

val sccs : t -> int list list
(** Strongly connected components (Tarjan), reverse topological order. *)

val recursive_groups : t -> string list list
(** SCCs that can actually recurse: size > 1, or a direct self-call.
    Recursion is a hazard on the fixed 4 KB PAL stack. *)

val has_recursion_from : t -> root:string -> bool

val max_depth : t -> root:string -> int option
(** Worst-case number of stacked frames starting at [root] ([root]
    itself counts as one). [None] when the root is undefined or
    recursion makes the depth unbounded. *)
