(** Finding exporters: the deterministic text report (the golden-test
    format, including the proved worst-case stack line) and a
    SARIF-style JSON document with one run per PAL whose property bag
    carries the Figure 6 TCB accounting plus the abstract-interpretation
    stack bound ([worst_stack_bytes], [-1] when unbounded) and
    constant-time finding count ([ct_findings]). *)

val to_text :
  ?index:Flicker_extract.Extract.index ->
  key:string ->
  Rules.target ->
  Rules.finding list ->
  string
(** [index] is a prebuilt index over [target.program], shared with the
    {!Rules.run} call that produced [findings]; without it the slice
    line re-indexes the program from scratch. *)

val sarif : (string * Rules.target * Rules.finding list) list -> Flicker_obs.Json.t

val slb_limit : unit -> int
(** Bytes available to linked PAL code inside the 64 KB SLB region. *)
