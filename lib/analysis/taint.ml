(* Summary-based secret-flow pass over the call graph.

   The abstract state is whether execution currently holds an
   unsanitized secret; bodies are the ordered call sequences the IR
   records. Each function gets a summary — how it transforms the
   caller's state, and whether a secret handed to it can reach a sink
   before being sanitized — computed to a fixpoint, then a reporting
   pass over the functions reachable from the entry records every sink
   reached while tainted. *)

type state = Clean | Tainted of string

type transfer = Identity | Clears | Taints of string

type summary = { transfer : transfer; leaks_if_tainted : bool }

type leak = { in_function : string; sink : string; source : string }

let sentinel = "<secret held by caller>"

(* Run one body under [entry] with the current summaries; [on_leak]
   fires for every sink reached while tainted. Returns the exit state.
   Effects-table classifications win over summaries, so per-PAL
   annotations can declassify a defined function (e.g. a constant-time
   comparison whose boolean result is not secret). *)
let simulate table g summaries i ~entry ~on_leak =
  let fname = Callgraph.name g i in
  let state = ref entry in
  Array.iter
    (fun callee ->
      let cname =
        match callee with
        | Callgraph.Defined j -> Callgraph.name g j
        | Callgraph.External n -> n
      in
      match Effects.classify table cname with
      | Some Effects.Sink -> (
          match !state with
          | Tainted src -> on_leak { in_function = fname; sink = cname; source = src }
          | Clean -> ())
      | Some Effects.Sanitizer | Some Effects.Zeroizer -> state := Clean
      | Some Effects.Source -> state := Tainted cname
      | None -> (
          match callee with
          | Callgraph.External _ -> ()
          | Callgraph.Defined j ->
              let sm = summaries.(j) in
              (match !state with
              | Tainted src when sm.leaks_if_tainted ->
                  on_leak { in_function = fname; sink = cname; source = src }
              | _ -> ());
              (match sm.transfer with
              | Identity -> ()
              | Clears -> state := Clean
              | Taints s -> state := Tainted s)))
    (Callgraph.calls g i);
  !state

let compute_summaries table g =
  let n = Callgraph.node_count g in
  let summaries = Array.make n { transfer = Identity; leaks_if_tainted = false } in
  let changed = ref true in
  let rounds = ref 0 in
  (* summaries depend only on callees, so any order converges within
     [n] rounds on an acyclic graph; the cap bounds cyclic ones (those
     are reported as recursion errors separately) *)
  while !changed && !rounds <= n + 1 do
    changed := false;
    incr rounds;
    for i = 0 to n - 1 do
      let leaks = ref false in
      let out =
        simulate table g summaries i ~entry:(Tainted sentinel) ~on_leak:(fun l ->
            if l.source = sentinel then leaks := true)
      in
      let transfer =
        match out with
        | Tainted s when s = sentinel -> Identity
        | Tainted s -> Taints s
        | Clean -> Clears
      in
      let sm = { transfer; leaks_if_tainted = !leaks } in
      if sm <> summaries.(i) then begin
        summaries.(i) <- sm;
        changed := true
      end
    done
  done;
  summaries

let analyze ~table g ~entry =
  let summaries = compute_summaries table g in
  let leaks = ref [] in
  List.iter
    (fun fname ->
      match Callgraph.id g fname with
      | None -> ()
      | Some i ->
          ignore
            (simulate table g summaries i ~entry:Clean ~on_leak:(fun l ->
                 leaks := l :: !leaks)))
    (Callgraph.reachable g ~root:entry);
  List.sort_uniq compare !leaks

let has_secret_source ~table g ~entry =
  let is_source n = Effects.classify table n = Some Effects.Source in
  List.exists
    (fun fname ->
      is_source fname
      ||
      match Callgraph.id g fname with
      | None -> false
      | Some i -> List.exists is_source (Callgraph.external_callees g i))
    (Callgraph.reachable g ~root:entry)

(* Does the entry's execution end in a zeroizer? The last call of the
   entry must be a zeroizer, or a defined function that itself ends in
   one (transitively) — the static shape of "erase secrets, then exit". *)
let ends_with_zeroize ~table g ~entry =
  let rec ends visited i =
    let cs = Callgraph.calls g i in
    let len = Array.length cs in
    len > 0
    &&
    match cs.(len - 1) with
    | Callgraph.External n -> Effects.classify table n = Some Effects.Zeroizer
    | Callgraph.Defined j ->
        Effects.classify table (Callgraph.name g j) = Some Effects.Zeroizer
        || ((not (List.mem j visited)) && ends (j :: visited) j)
  in
  match Callgraph.id g entry with None -> false | Some i -> ends [ i ] i
