type effect_class = Source | Sanitizer | Sink | Zeroizer

let class_name = function
  | Source -> "secret-source"
  | Sanitizer -> "sanitizer"
  | Sink -> "sink"
  | Zeroizer -> "zeroizer"

let has_prefix p name =
  String.length name >= String.length p && String.sub name 0 (String.length p) = p

(* The built-in table, from the paper's PAL discipline:
   - sources produce secrets (TPM_Unseal output, sealed inputs,
     GetRandom-derived keys, secure-channel decryptions);
   - sanitizers make a secret safe to leave the SLB (seal or encrypt);
   - sinks are where bytes leave the PAL (the output page, physical
     writes outside the region, anything network-shaped — those calls
     are also Forbidden, but if present they still count as sinks);
   - zeroizers erase secrets, satisfying the Section 5.1 teardown
     requirement. *)
let builtin name =
  match name with
  | "TPM_Unseal" | "Tspi_Data_Unseal" | "TPM_GetRandom" | "pal_read_sealed_input" ->
      Some Source
  | "TPM_Seal" | "Tspi_Data_Seal" -> Some Sanitizer
  | "pal_output_write" -> Some Sink
  | "zeroize_secrets" | "zeroize" | "memset_zero" -> Some Zeroizer
  | "send" | "write" | "sendto" -> Some Sink
  | _ ->
      if has_prefix "unseal" name then Some Source
      else if has_prefix "sc_decrypt" name then Some Source
      else if has_prefix "encrypt" name then Some Sanitizer
      else if
        List.exists
          (fun p -> has_prefix p name)
          [ "rsa_encrypt"; "rsa_sign"; "aes_encrypt"; "rc4_encrypt"; "elgamal_encrypt"; "seal_" ]
      then Some Sanitizer
      else if has_prefix "phys_write" name then Some Sink
      else None

type table = (string, effect_class) Hashtbl.t

let make overrides =
  let t = Hashtbl.create 16 in
  List.iter (fun (name, cls) -> Hashtbl.replace t name cls) overrides;
  t

let default () = make []

let classify table name =
  match Hashtbl.find_opt table name with
  | Some cls -> Some cls
  | None -> builtin name
