module J = Flicker_obs.Json
module Pal = Flicker_slb.Pal
module Layout = Flicker_slb.Layout
module Slb_core = Flicker_slb.Slb_core
module Extract = Flicker_extract.Extract

let slb_limit () = Layout.max_pal_code ~slb_core_size:Slb_core.core_size

let absint_of (target : Rules.target) =
  Absint.analyze
    ~table:(Effects.make target.Rules.effects)
    (Callgraph.build target.Rules.program)
    ~entry:target.Rules.entry

let ct_findings findings =
  List.length
    (List.filter
       (fun (fi : Rules.finding) ->
         fi.Rules.rule = "secret-branch" || fi.Rules.rule = "secret-index")
       findings)

let module_names pal =
  match pal.Pal.modules with
  | [] -> "(none)"
  | ms -> String.concat ", " (List.map (fun m -> (Pal.info m).Pal.module_name) ms)

(* Deterministic per-PAL text report; the golden regression fixtures
   under test/golden/ are exactly this output. *)
let to_text ?index ~key (target : Rules.target) findings =
  let buf = Buffer.create 512 in
  let pal = target.Rules.pal in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "== %s (%s) ==\n" key pal.Pal.name;
  add "entry:    %s\n" target.Rules.entry;
  add "modules:  %s\n" (module_names pal);
  add "tcb:      %d LOC of %d budget; linked code %d of %d bytes\n" (Pal.total_loc pal)
    target.Rules.budget_loc
    (String.length (Pal.linked_code pal))
    (slb_limit ());
  (match Extract.extract ?index target.Rules.program ~target:target.Rules.entry with
  | Ok e ->
      add "slice:    %d functions, %d LOC, %d types\n"
        (List.length e.Extract.required_functions)
        e.Extract.extracted_loc
        (List.length e.Extract.required_types);
      let r = absint_of target in
      (match r.Absint.stack with
      | Absint.Unbounded ->
          add "stack:    unbounded (recursive call cycle) of %d bytes\n"
            Layout.stack_size
      | Absint.Bounded bytes ->
          add "stack:    worst-case %d bytes of %d (%s)\n" bytes Layout.stack_size
            (String.concat " -> " r.Absint.worst_chain))
  | Error _ -> add "slice:    (entry not defined)\n");
  add "findings: %d error(s), %d warning(s), %d info\n" (Rules.count Rules.Error findings)
    (Rules.count Rules.Warning findings)
    (Rules.count Rules.Info findings);
  if findings = [] then add "  clean\n"
  else
    List.iter
      (fun (fi : Rules.finding) ->
        if fi.Rules.location = "" then
          add "  [%s] %s %s: %s\n"
            (Rules.severity_name fi.Rules.severity)
            fi.Rules.rule fi.Rules.subject fi.Rules.message
        else
          add "  [%s] %s %s @ %s: %s\n"
            (Rules.severity_name fi.Rules.severity)
            fi.Rules.rule fi.Rules.subject fi.Rules.location fi.Rules.message)
      findings;
  Buffer.contents buf

let level = function
  | Rules.Error -> "error"
  | Rules.Warning -> "warning"
  | Rules.Info -> "note"

let rule_descriptors () =
  J.List
    (List.map
       (fun (r : Rules.rule) ->
         J.Obj
           [
             ("id", J.String r.Rules.id);
             ("shortDescription", J.Obj [ ("text", J.String r.Rules.title) ]);
             ("defaultConfiguration",
              J.Obj [ ("level", J.String (level r.Rules.severity)) ]);
           ])
       Rules.rules)

let result_json ~key (fi : Rules.finding) =
  J.Obj
    [
      ("ruleId", J.String fi.Rules.rule);
      ("level", J.String (level fi.Rules.severity));
      ("message", J.Obj [ ("text", J.String fi.Rules.message) ]);
      ( "locations",
        J.List
          [
            J.Obj
              [
                ( "logicalLocations",
                  J.List
                    [
                      J.Obj
                        [
                          ( "fullyQualifiedName",
                            J.String
                              (key ^ "/" ^ fi.Rules.subject
                              ^
                              if fi.Rules.location = "" then ""
                              else "/" ^ fi.Rules.location) );
                        ];
                    ] );
              ];
          ] );
    ]

(* SARIF-style document: one run per analyzed PAL. The per-run property
   bag carries the Figure 6-style TCB accounting (LOC and SLB bytes) so
   `flicker analyze --json` doubles as the paper's TCB table. *)
let sarif results =
  J.Obj
    [
      ("version", J.String "2.1.0");
      ( "runs",
        J.List
          (List.map
             (fun (key, (target : Rules.target), findings) ->
               let pal = target.Rules.pal in
               J.Obj
                 [
                   ( "tool",
                     J.Obj
                       [
                         ( "driver",
                           J.Obj
                             [
                               ("name", J.String "flicker-analyze");
                               ("rules", rule_descriptors ());
                             ] );
                       ] );
                   ("results", J.List (List.map (result_json ~key) findings));
                   ( "properties",
                     J.Obj
                       [
                         ("pal", J.String pal.Pal.name);
                         ("key", J.String key);
                         ("entry", J.String target.Rules.entry);
                         ("tcb_loc", J.Int (Pal.total_loc pal));
                         ("budget_loc", J.Int target.Rules.budget_loc);
                         ("slb_bytes", J.Int (String.length (Pal.linked_code pal)));
                         ("slb_limit_bytes", J.Int (slb_limit ()));
                         ("errors", J.Int (Rules.errors findings));
                         ("warnings", J.Int (Rules.count Rules.Warning findings));
                         ( "worst_stack_bytes",
                           J.Int
                             (match (absint_of target).Absint.stack with
                             | Absint.Bounded b -> b
                             | Absint.Unbounded -> -1) );
                         ("stack_limit_bytes", J.Int Layout.stack_size);
                         ("ct_findings", J.Int (ct_findings findings));
                       ] );
                 ])
             results) );
    ]
