(** Secret-flow (taint) analysis over the call graph.

    Flags every path on which a secret source's output can reach a sink
    with no sanitizer in between — the static form of the paper's rule
    that secrets must be sealed or encrypted before they leave the SLB.
    Bodies are ordered call sequences, so "sanitize, then output" and
    "output, then sanitize" are distinguished. *)

type leak = {
  in_function : string;  (** where the tainted sink call happens *)
  sink : string;  (** the sink (or leaking callee) reached *)
  source : string;  (** the source whose secret reaches it *)
}

val analyze : table:Effects.table -> Callgraph.t -> entry:string -> leak list
(** All source->sink-without-sanitizer flows reachable from [entry],
    deduplicated and deterministically ordered. *)

val has_secret_source : table:Effects.table -> Callgraph.t -> entry:string -> bool
(** Does the slice rooted at [entry] produce any secret at all? *)

val ends_with_zeroize : table:Effects.table -> Callgraph.t -> entry:string -> bool
(** True when [entry]'s last call is (transitively) a zeroizer — the
    teardown discipline of Section 5.1. *)
