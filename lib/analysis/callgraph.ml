module Extract = Flicker_extract.Extract

type callee = Defined of int | External of string

type t = {
  names : string array;
  funcs : Extract.func array;
  ids : (string, int) Hashtbl.t;
  calls : callee array array;
}

let build program =
  (* first definition wins, matching the extraction's lookup *)
  let seen = Hashtbl.create 16 in
  let defs =
    List.filter
      (fun f ->
        if Hashtbl.mem seen f.Extract.fname then false
        else (Hashtbl.add seen f.Extract.fname (); true))
      program.Extract.functions
  in
  let funcs = Array.of_list defs in
  let names = Array.map (fun f -> f.Extract.fname) funcs in
  let ids = Hashtbl.create (2 * Array.length funcs) in
  Array.iteri (fun i n -> Hashtbl.replace ids n i) names;
  let calls =
    Array.map
      (fun f ->
        Array.of_list
          (List.map
             (fun callee ->
               match Hashtbl.find_opt ids callee with
               | Some id -> Defined id
               | None -> External callee)
             f.Extract.calls))
      funcs
  in
  { names; funcs; ids; calls }

let node_count g = Array.length g.names
let name g i = g.names.(i)
let func g i = g.funcs.(i)
let id g n = Hashtbl.find_opt g.ids n
let calls g i = g.calls.(i)

let defined_callees g i =
  Array.to_list g.calls.(i)
  |> List.filter_map (function Defined j -> Some j | External _ -> None)

let external_callees g i =
  Array.to_list g.calls.(i)
  |> List.filter_map (function External n -> Some n | Defined _ -> None)

(* preorder reachability from a root, defined functions only *)
let reachable_ids g ~root =
  match id g root with
  | None -> []
  | Some r ->
      let seen = Array.make (node_count g) false in
      let order = ref [] in
      let rec visit i =
        if not seen.(i) then begin
          seen.(i) <- true;
          order := i :: !order;
          List.iter visit (defined_callees g i)
        end
      in
      visit r;
      List.rev !order

let reachable g ~root = List.map (name g) (reachable_ids g ~root)

let unreachable g ~root =
  let seen = Array.make (node_count g) false in
  List.iter (fun i -> seen.(i) <- true) (reachable_ids g ~root);
  let dead = ref [] in
  Array.iteri (fun i n -> if not seen.(i) then dead := n :: !dead) g.names;
  List.rev !dead

(* Tarjan's strongly connected components, iterative-enough for our
   graph sizes (recursion depth bounded by the call-graph size). *)
let sccs g =
  let n = node_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (defined_callees g v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  List.rev !components

(* SCCs that can actually recurse: more than one member, or a self-call *)
let recursive_groups g =
  List.filter_map
    (fun comp ->
      match comp with
      | [ v ] ->
          if List.mem v (defined_callees g v) then Some [ name g v ] else None
      | _ :: _ :: _ -> Some (List.map (name g) comp)
      | [] -> None)
    (sccs g)

let has_recursion_from g ~root =
  let reach = reachable_ids g ~root in
  let in_reach = Array.make (node_count g) false in
  List.iter (fun i -> in_reach.(i) <- true) reach;
  List.exists
    (fun group -> List.exists (fun n -> match id g n with Some i -> in_reach.(i) | None -> false) group)
    (recursive_groups g)

(* Worst-case call depth (number of stacked frames) from the root.
   [None] when recursion reachable from the root makes it unbounded. *)
let max_depth g ~root =
  if id g root = None then None
  else if has_recursion_from g ~root then None
  else begin
    let memo = Array.make (node_count g) (-1) in
    let rec depth i =
      if memo.(i) >= 0 then memo.(i)
      else begin
        let d =
          1 + List.fold_left (fun acc j -> max acc (depth j)) 0 (defined_callees g i)
        in
        memo.(i) <- d;
        d
      end
    in
    match id g root with Some r -> Some (depth r) | None -> None
  end
