module Extract = Flicker_extract.Extract

module Interval = struct
  type t = { lo : int; hi : int }

  let neg_inf = min_int
  let pos_inf = max_int
  let mk lo hi = { lo; hi }
  let top = mk neg_inf pos_inf
  let of_int n = mk n n
  let range a b = if a <= b then mk a b else mk b a
  let join a b = mk (min a.lo b.lo) (max a.hi b.hi)

  let widen old next =
    mk
      (if next.lo < old.lo then neg_inf else next.lo)
      (if next.hi > old.hi then pos_inf else next.hi)

  let contains i n = i.lo <= n && n <= i.hi
  let subset a b = b.lo <= a.lo && a.hi <= b.hi
  let equal a b = a.lo = b.lo && a.hi = b.hi
  let is_top i = i.lo = neg_inf && i.hi = pos_inf
  let finite n = n <> neg_inf && n <> pos_inf

  (* saturating bound arithmetic; the _lo/_hi variants resolve an
     (-oo) + (+oo) clash toward the bound being computed, which is the
     sound direction for the endpoint formulas below *)
  let add_dir ~inf a b =
    if a = inf || b = inf then inf
    else if a = neg_inf || a = pos_inf then a
    else if b = neg_inf || b = pos_inf then b
    else
      let s = a + b in
      if a > 0 && b > 0 && s < 0 then pos_inf
      else if a < 0 && b < 0 && s >= 0 then neg_inf
      else s

  let add_lo = add_dir ~inf:neg_inf
  let add_hi = add_dir ~inf:pos_inf

  let mul_sat a b =
    if a = 0 || b = 0 then 0
    else if not (finite a) || not (finite b) then
      if a > 0 = (b > 0) then pos_inf else neg_inf
    else
      let p = a * b in
      if p / b <> a || (a = -1 && b = min_int) || (b = -1 && a = min_int) then
        if a > 0 = (b > 0) then pos_inf else neg_inf
      else p

  let div_sat x d =
    (* d <> 0 *)
    if not (finite x) then if x > 0 = (d > 0) then pos_inf else neg_inf
    else if x = min_int && d = -1 then pos_inf
    else x / d

  let hull = function
    | [] -> of_int 0
    | c :: cs ->
        List.fold_left (fun acc v -> mk (min acc.lo v) (max acc.hi v)) (mk c c) cs

  let add a b = mk (add_lo a.lo b.lo) (add_hi a.hi b.hi)

  let sub a b =
    (* negate with saturation: -(min_int) = max_int *)
    let neg n = if n = neg_inf then pos_inf else if n = pos_inf then neg_inf else -n in
    mk (add_lo a.lo (neg b.hi)) (add_hi a.hi (neg b.lo))

  let mul a b = hull [ mul_sat a.lo b.lo; mul_sat a.lo b.hi; mul_sat a.hi b.lo; mul_sat a.hi b.hi ]

  let div a b =
    let divisors =
      List.sort_uniq compare
        (List.filter (fun d -> d <> 0 && contains b d) [ b.lo; b.hi; -1; 1 ])
    in
    let cands = if contains b 0 then [ 0 ] else [] in
    let cands =
      cands @ List.concat_map (fun d -> [ div_sat a.lo d; div_sat a.hi d ]) divisors
    in
    hull cands

  let rem a b =
    (* x mod d follows the dividend's sign; |x mod d| < |d| and <= |x|;
       mod-by-zero is 0 (total semantics) *)
    let m =
      if not (finite b.lo) || not (finite b.hi) then pos_inf
      else max (abs b.lo) (abs b.hi)
    in
    if m = 0 then of_int 0
    else
      let bound = if m = pos_inf then pos_inf else m - 1 in
      let lo = if a.lo >= 0 then 0 else max (if bound = pos_inf then neg_inf else -bound) (min 0 a.lo) in
      let hi = if a.hi <= 0 then 0 else min bound (max 0 a.hi) in
      mk lo hi

  let band a b =
    let nonneg_his =
      List.filter_map (fun i -> if i.lo >= 0 then Some i.hi else None) [ a; b ]
    in
    match nonneg_his with
    | [] -> top
    | hs -> mk 0 (List.fold_left min pos_inf hs)

  let cmp_bool decide_true decide_false =
    if decide_true then of_int 1 else if decide_false then of_int 0 else mk 0 1

  let binop (op : Extract.binop) a b =
    match op with
    | Extract.Add -> add a b
    | Extract.Sub -> sub a b
    | Extract.Mul -> mul a b
    | Extract.Div -> div a b
    | Extract.Mod -> rem a b
    | Extract.Band -> band a b
    | Extract.Eq -> cmp_bool (a.lo = a.hi && b.lo = b.hi && a.lo = b.lo) (a.hi < b.lo || b.hi < a.lo)
    | Extract.Ne -> cmp_bool (a.hi < b.lo || b.hi < a.lo) (a.lo = a.hi && b.lo = b.hi && a.lo = b.lo)
    | Extract.Lt -> cmp_bool (a.hi < b.lo) (a.lo >= b.hi)
    | Extract.Le -> cmp_bool (a.hi <= b.lo) (a.lo > b.hi)

  let bound_str n =
    if n = neg_inf then "-oo" else if n = pos_inf then "+oo" else string_of_int n

  let to_string i = Printf.sprintf "[%s, %s]" (bound_str i.lo) (bound_str i.hi)
end

module Secrecy = struct
  type t = string option

  let public = None
  let join a b = match a with Some _ -> a | None -> b
  let equal (a : t) (b : t) = a = b
  let is_secret = function Some _ -> true | None -> false
end

module Env = struct
  module M = Map.Make (String)

  type 'a t = 'a M.t

  let empty = M.empty
  let get ~default env k = match M.find_opt k env with Some v -> v | None -> default
  let set env k v = M.add k v env

  let merge ~f ~default a b =
    M.merge
      (fun _ va vb ->
        Some (f (Option.value va ~default) (Option.value vb ~default)))
      a b

  let equal ~eq ~default a b =
    let covers a b =
      M.for_all (fun k va -> eq va (get ~default b k)) a
    in
    covers a b && covers b a

  let bindings = M.bindings
end
