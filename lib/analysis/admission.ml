module Fleet = Flicker_service.Fleet
module Request = Flicker_service.Request

type verdict = {
  key : string;
  pal_name : string;
  passing : bool;
  errors : int;
  warnings : int;
  stack_bytes : int option;
  reasons : string list;
}

let blocking ~strict (fi : Rules.finding) =
  match fi.Rules.severity with
  | Rules.Error -> true
  | Rules.Warning -> strict
  | Rules.Info -> false

let reason_line (fi : Rules.finding) =
  if fi.Rules.location = "" then
    Printf.sprintf "%s %s: %s" fi.Rules.rule fi.Rules.subject fi.Rules.message
  else
    Printf.sprintf "%s %s @ %s: %s" fi.Rules.rule fi.Rules.subject fi.Rules.location
      fi.Rules.message

let evaluate ?(strict = false) ?index ~key (target : Rules.target) =
  let pal_name = target.Rules.pal.Flicker_slb.Pal.name in
  match Rules.run ?index target with
  | Error msg ->
      {
        key;
        pal_name;
        passing = false;
        errors = 1;
        warnings = 0;
        stack_bytes = None;
        reasons = [ Printf.sprintf "driver %s: %s" target.Rules.entry msg ];
      }
  | Ok findings ->
      let stack_bytes =
        let r =
          Absint.analyze
            ~table:(Effects.make target.Rules.effects)
            (Callgraph.build target.Rules.program)
            ~entry:target.Rules.entry
        in
        match r.Absint.stack with
        | Absint.Bounded b -> Some b
        | Absint.Unbounded -> None
      in
      let passing = not (Rules.should_fail ~strict findings) in
      {
        key;
        pal_name;
        passing;
        errors = Rules.errors findings;
        warnings = Rules.warnings findings;
        stack_bytes;
        reasons =
          (if passing then []
           else List.map reason_line (List.filter (blocking ~strict) findings));
      }

let gate verdict (_ : Request.t) =
  if verdict.passing then None
  else
    Some
      (Printf.sprintf "PAL %s (%s) failed static analysis: %s" verdict.pal_name
         verdict.key
         (String.concat "; " verdict.reasons))

let install fleet verdict = Fleet.set_admission_gate fleet (gate verdict)
