(** The effects table: classifies function names by their role in the
    secret-flow discipline a PAL must uphold (Sections 4.3 and 5.1).

    A built-in table covers the TPM API, the PAL-environment primitives,
    and crypto naming conventions; per-PAL annotations (e.g. marking a
    constant-time comparison as a declassifier) are layered on top and
    win over the built-ins. *)

type effect_class =
  | Source  (** produces a secret: TPM_Unseal, sealed inputs, GetRandom keys *)
  | Sanitizer  (** makes a secret safe to leave the SLB: seal/encrypt/sign *)
  | Sink  (** bytes leave the PAL: output page, physical writes outside *)
  | Zeroizer  (** erases secrets before teardown (Section 5.1) *)

val class_name : effect_class -> string
val builtin : string -> effect_class option

type table

val default : unit -> table
val make : (string * effect_class) list -> table
(** A table with per-PAL overrides; overrides beat the built-ins. *)

val classify : table -> string -> effect_class option
