(** Analysis-gated admission: run the full rule set over a PAL's model
    and turn the outcome into a {!Flicker_service.Fleet} admission gate,
    so a fleet refuses to serve requests for a PAL that failed static
    analysis (stack overflow proofs, constant-time lint, secret-flow
    discipline) before any queue or session resources are spent. *)

type verdict = {
  key : string;  (** model key the verdict was computed for *)
  pal_name : string;
  passing : bool;
  errors : int;
  warnings : int;
  stack_bytes : int option;  (** proved worst-case stack; [None] when
                                 unbounded or the entry is undefined *)
  reasons : string list;
      (** one line per blocking finding ("rule subject: message"),
          in the canonical finding order; empty when [passing] *)
}

val evaluate :
  ?strict:bool ->
  ?index:Flicker_extract.Extract.index ->
  key:string ->
  Rules.target ->
  verdict
(** Run {!Rules.run} and fold the findings into a verdict via
    {!Rules.should_fail} (with [strict], warnings block too). A target
    whose entry is not defined fails with the driver error as the
    reason. *)

val gate : verdict -> Flicker_service.Request.t -> string option
(** The admission-gate function a failing verdict induces: every
    request is refused with the concatenated reasons; a passing verdict
    admits everything. *)

val install : Flicker_service.Fleet.t -> verdict -> unit
(** [Fleet.set_admission_gate] with {!gate}; rejections then surface as
    [analysis_rejected] in {!Flicker_service.Fleet.summary}. *)
