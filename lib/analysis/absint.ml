module Extract = Flicker_extract.Extract
module I = Domains.Interval
module S = Domains.Secrecy
module Env = Domains.Env

(* ------------------------------------------------------------------ *)
(* Frame model                                                         *)
(* ------------------------------------------------------------------ *)

let opaque_frame_bytes = 128
let frame_base_bytes = 32
let scalar_bytes = 8

let rec iter_stmts f stmts =
  List.iter
    (fun s ->
      f s;
      match s with
      | Extract.If { then_; else_; _ } ->
          iter_stmts f then_;
          iter_stmts f else_
      | Extract.For { body; _ } -> iter_stmts f body
      | _ -> ())
    stmts

(* every Local declared anywhere in the body: name -> (elems, elem_size);
   first declaration wins, matching the slicer's shadowing rule *)
let locals_of (f : Extract.func) =
  let acc = ref [] in
  iter_stmts
    (function
      | Extract.Local { name; elems; elem_size } ->
          if not (List.mem_assoc name !acc) then
            acc := (name, (max elems 0, max elem_size 1)) :: !acc
      | _ -> ())
    f.Extract.stmts;
  List.rev !acc

let scalars_of (f : Extract.func) =
  let bufs = List.map fst (locals_of f) in
  let acc = ref [] in
  let add n = if not (List.mem n bufs) && not (List.mem n !acc) then acc := n :: !acc in
  List.iter add f.Extract.params;
  iter_stmts
    (function
      | Extract.Assign { dst; _ } -> add dst
      | Extract.Call { dst = Some d; _ } -> add d
      | Extract.For { var; _ } -> add var
      | _ -> ())
    f.Extract.stmts;
  List.rev !acc

let frame_bytes (f : Extract.func) =
  if f.Extract.stmts = [] then opaque_frame_bytes
  else
    let arrays =
      List.fold_left (fun a (_, (elems, sz)) -> a + (elems * sz)) 0 (locals_of f)
    in
    frame_base_bytes + arrays + (scalar_bytes * List.length (scalars_of f))

(* ------------------------------------------------------------------ *)
(* Whole-PAL stack bound (work-list over the acyclic reachable graph)  *)
(* ------------------------------------------------------------------ *)

type stack_bound = Bounded of int | Unbounded

let stack_pass g ~entry =
  match Callgraph.id g entry with
  | None -> (Bounded 0, [])
  | Some root ->
      if Callgraph.has_recursion_from g ~root:entry then (Unbounded, [])
      else
        let n = Callgraph.node_count g in
        let cost = Array.make n 0 in
        let callers = Array.make n [] in
        for i = 0 to n - 1 do
          List.iter
            (fun j -> callers.(j) <- i :: callers.(j))
            (Callgraph.defined_callees g i)
        done;
        let callee_cost = function
          | Callgraph.Defined j -> cost.(j)
          | Callgraph.External _ -> opaque_frame_bytes
        in
        let compute i =
          frame_bytes (Callgraph.func g i)
          + Array.fold_left (fun acc c -> max acc (callee_cost c)) 0 (Callgraph.calls g i)
        in
        let queue = Queue.create () in
        let queued = Array.make n false in
        for i = 0 to n - 1 do
          Queue.push i queue;
          queued.(i) <- true
        done;
        (* the reachable subgraph is acyclic here, so this converges; the
           step cap is a belt-and-braces guard *)
        let steps = ref (((n + 1) * (n + 2)) + 1) in
        while (not (Queue.is_empty queue)) && !steps > 0 do
          decr steps;
          let i = Queue.pop queue in
          queued.(i) <- false;
          let c = compute i in
          if c <> cost.(i) then begin
            cost.(i) <- c;
            List.iter
              (fun p ->
                if not queued.(p) then begin
                  queued.(p) <- true;
                  Queue.push p queue
                end)
              callers.(i)
          end
        done;
        (* recover the chain realizing the bound by greedy descent *)
        let rec chain i =
          let name = Callgraph.name g i in
          let best =
            Array.fold_left
              (fun acc c ->
                let v = callee_cost c in
                match acc with Some (bv, _) when bv >= v -> acc | _ -> Some (v, c))
              None (Callgraph.calls g i)
          in
          match best with
          | None -> [ name ]
          | Some (_, Callgraph.Defined j) -> name :: chain j
          | Some (_, Callgraph.External e) -> [ name; e ]
        in
        (Bounded cost.(root), chain root)

(* ------------------------------------------------------------------ *)
(* Interval pass: buffer-index ranges and OOB accesses                 *)
(* ------------------------------------------------------------------ *)

type bounds_violation = {
  in_function : string;
  buffer : string;
  size_elems : int;
  index : I.t;
  is_write : bool;
}

let interval_pass fname (f : Extract.func) ~record_violation ~record_hull =
  let bufs = locals_of f in
  let default = I.top in
  let record buf idx ~write =
    match List.assoc_opt buf bufs with
    | None -> ()
    | Some (elems, _) ->
        record_hull fname buf idx;
        if elems = 0 || not (I.subset idx (I.range 0 (elems - 1))) then
          record_violation
            { in_function = fname; buffer = buf; size_elems = elems; index = idx; is_write = write }
  in
  let rec eval env = function
    | Extract.Num n -> I.of_int n
    | Extract.Var v -> Env.get ~default env v
    | Extract.Bin (op, a, b) -> I.binop op (eval env a) (eval env b)
    | Extract.Load { buf; index } ->
        record buf (eval env index) ~write:false;
        I.top
  in
  let rec exec env stmt =
    match stmt with
    | Extract.Local _ -> env
    | Extract.Assign { dst; src } -> Env.set env dst (eval env src)
    | Extract.Store { buf; index; src } ->
        let idx = eval env index in
        ignore (eval env src);
        record buf idx ~write:true;
        env
    | Extract.Call { dst; args; _ } ->
        List.iter (fun a -> ignore (eval env a)) args;
        (match dst with Some d -> Env.set env d I.top | None -> env)
    | Extract.Return e ->
        (match e with Some e -> ignore (eval env e) | None -> ());
        env
    | Extract.If { cond; then_; else_ } ->
        ignore (eval env cond);
        let e1 = exec_list env then_ and e2 = exec_list env else_ in
        Env.merge ~f:I.join ~default e1 e2
    | Extract.For { var; lo; hi; body } ->
        let lo_i = eval env lo and hi_i = eval env hi in
        let last = I.binop Extract.Sub hi_i (I.of_int 1) in
        let env =
          if last.I.hi < lo_i.I.lo then env (* definitely empty: body never runs *)
          else
            let var_range = I.range lo_i.I.lo last.I.hi in
            let rec fix env_in k =
              let env_out = exec_list (Env.set env_in var var_range) body in
              let joined = Env.merge ~f:I.join ~default env_in env_out in
              let next =
                if k >= 2 then Env.merge ~f:I.widen ~default env_in joined else joined
              in
              if Env.equal ~eq:I.equal ~default env_in next then env_in
              else fix next (k + 1)
            in
            fix env 0
        in
        (* on exit the counter is hi (loop ran) or lo (it did not) *)
        Env.set env var (I.join lo_i hi_i)
  and exec_list env stmts = List.fold_left exec env stmts in
  ignore (exec_list Env.empty f.Extract.stmts)

(* ------------------------------------------------------------------ *)
(* Constant-time lint: taint x control dependence x memory dependence  *)
(* ------------------------------------------------------------------ *)

type ct_kind = Branch | Loop_bound | Index

let ct_kind_name = function
  | Branch -> "branch"
  | Loop_bound -> "loop bound"
  | Index -> "memory index"

type ct_violation = {
  ct_function : string;
  kind : ct_kind;
  source : string;
  detail : string;
}

let binop_name = function
  | Extract.Add -> "+"
  | Extract.Sub -> "-"
  | Extract.Mul -> "*"
  | Extract.Div -> "/"
  | Extract.Mod -> "%"
  | Extract.Band -> "&"
  | Extract.Eq -> "=="
  | Extract.Ne -> "!="
  | Extract.Lt -> "<"
  | Extract.Le -> "<="

let rec expr_str = function
  | Extract.Num n -> string_of_int n
  | Extract.Var v -> v
  | Extract.Bin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_str a) (binop_name op) (expr_str b)
  | Extract.Load { buf; index } -> Printf.sprintf "%s[%s]" buf (expr_str index)

let ct_pass ~table g ~entry =
  let reach = Callgraph.reachable g ~root:entry in
  let func_of name =
    match Callgraph.id g name with
    | Some i -> Some (Callgraph.func g i)
    | None -> None
  in
  (* interprocedural state: per-parameter secrecy contexts (join over
     call sites, entry starts public) and return summaries *)
  let ctxs : (string, S.t array) Hashtbl.t = Hashtbl.create 16 in
  let rets : (string, S.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun name ->
      (match func_of name with
      | Some f -> Hashtbl.replace ctxs name (Array.make (List.length f.Extract.params) S.public)
      | None -> ());
      Hashtbl.replace rets name S.public)
    reach;
  let changed = ref false in
  let analyze_fn ~record fname =
    match func_of fname with
    | None -> ()
    | Some f when f.Extract.stmts = [] -> ()
    | Some f ->
        let ctx = Hashtbl.find ctxs fname in
        let env0 =
          List.fold_left
            (fun (env, k) p -> (Env.set env p ctx.(k), k + 1))
            (Env.empty, 0) f.Extract.params
          |> fst
        in
        let ret = ref S.public in
        let rec eval env bufs = function
          | Extract.Num _ -> S.public
          | Extract.Var v -> Env.get ~default:S.public env v
          | Extract.Bin (_, a, b) -> S.join (eval env bufs a) (eval env bufs b)
          | Extract.Load { buf; index } as e ->
              let is = eval env bufs index in
              (match is with
              | Some src -> record { ct_function = fname; kind = Index; source = src; detail = expr_str e }
              | None -> ());
              S.join (Env.get ~default:S.public bufs buf) is
        in
        let rec exec pc (env, bufs) stmt =
          match stmt with
          | Extract.Local { name; _ } -> (env, Env.set bufs name S.public)
          | Extract.Assign { dst; src } ->
              (Env.set env dst (S.join pc (eval env bufs src)), bufs)
          | Extract.Store { buf; index; src } ->
              let is = eval env bufs index in
              (match is with
              | Some s ->
                  record
                    {
                      ct_function = fname;
                      kind = Index;
                      source = s;
                      detail = Printf.sprintf "%s[%s]" buf (expr_str index);
                    }
              | None -> ());
              let v = S.join is (S.join pc (eval env bufs src)) in
              (env, Env.set bufs buf (S.join (Env.get ~default:S.public bufs buf) v))
          | Extract.Call { dst; callee; args } ->
              let argsec = List.map (eval env bufs) args in
              let result =
                match Effects.classify table callee with
                | Some Effects.Source -> Some callee
                | Some Effects.Sanitizer | Some Effects.Zeroizer | Some Effects.Sink ->
                    S.public
                | None -> (
                    match func_of callee with
                    | Some cf when cf.Extract.stmts <> [] ->
                        (match Hashtbl.find_opt ctxs callee with
                        | Some cctx ->
                            List.iteri
                              (fun k s ->
                                if k < Array.length cctx then begin
                                  let s' = S.join cctx.(k) s in
                                  if not (S.equal cctx.(k) s') then begin
                                    cctx.(k) <- s';
                                    changed := true
                                  end
                                end)
                              argsec
                        | None -> ());
                        Option.value (Hashtbl.find_opt rets callee) ~default:S.public
                    | _ ->
                        (* unclassified external or shape-only callee:
                           assume the result reflects its arguments *)
                        List.fold_left S.join S.public argsec)
              in
              ( (match dst with
                | Some d -> Env.set env d (S.join pc result)
                | None -> env),
                bufs )
          | Extract.Return e ->
              (match e with
              | Some e -> ret := S.join !ret (S.join pc (eval env bufs e))
              | None -> ());
              (env, bufs)
          | Extract.If { cond; then_; else_ } ->
              let cs = eval env bufs cond in
              (match cs with
              | Some src ->
                  record { ct_function = fname; kind = Branch; source = src; detail = expr_str cond }
              | None -> ());
              let pc' = S.join pc cs in
              let e1, b1 = exec_list pc' (env, bufs) then_ in
              let e2, b2 = exec_list pc' (env, bufs) else_ in
              ( Env.merge ~f:S.join ~default:S.public e1 e2,
                Env.merge ~f:S.join ~default:S.public b1 b2 )
          | Extract.For { var; lo; hi; body } ->
              let ls = S.join (eval env bufs lo) (eval env bufs hi) in
              (match ls with
              | Some src ->
                  record
                    {
                      ct_function = fname;
                      kind = Loop_bound;
                      source = src;
                      detail = Printf.sprintf "%s..%s" (expr_str lo) (expr_str hi);
                    }
              | None -> ());
              let pc' = S.join pc ls in
              let env = Env.set env var ls in
              let eq = Env.equal ~eq:S.equal ~default:S.public in
              let rec fix (env, bufs) k =
                let e', b' = exec_list pc' (env, bufs) body in
                let e'' = Env.merge ~f:S.join ~default:S.public env e' in
                let b'' = Env.merge ~f:S.join ~default:S.public bufs b' in
                if k > 20 || (eq env e'' && eq bufs b'') then (e'', b'')
                else fix (e'', b'') (k + 1)
              in
              fix (env, bufs) 0
        and exec_list pc st stmts = List.fold_left (exec pc) st stmts in
        ignore (exec_list S.public (env0, Env.empty) f.Extract.stmts);
        let old = Option.value (Hashtbl.find_opt rets fname) ~default:S.public in
        let joined = S.join old !ret in
        if not (S.equal old joined) then begin
          Hashtbl.replace rets fname joined;
          changed := true
        end
  in
  let quiet = ignore in
  let rounds = ref (List.length reach + 2) in
  let continue_ = ref true in
  while !continue_ && !rounds > 0 do
    decr rounds;
    changed := false;
    List.iter (analyze_fn ~record:quiet) reach;
    if not !changed then continue_ := false
  done;
  (* reporting pass against the stabilized summaries *)
  let out = ref [] in
  List.iter (analyze_fn ~record:(fun v -> out := v :: !out)) reach;
  List.sort_uniq compare !out

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

type result = {
  frames : (string * int) list;
  stack : stack_bound;
  worst_chain : string list;
  bounds : bounds_violation list;
  ct : ct_violation list;
  index_hulls : ((string * string) * I.t) list;
}

let analyze ~table g ~entry =
  let reach = Callgraph.reachable g ~root:entry in
  let frames =
    List.map
      (fun name ->
        match Callgraph.id g name with
        | Some i -> (name, frame_bytes (Callgraph.func g i))
        | None -> (name, opaque_frame_bytes))
      reach
  in
  let stack, worst_chain = stack_pass g ~entry in
  let violations = ref [] in
  let hulls : (string * string, I.t) Hashtbl.t = Hashtbl.create 16 in
  let record_hull fname buf idx =
    let key = (fname, buf) in
    match Hashtbl.find_opt hulls key with
    | Some old -> Hashtbl.replace hulls key (I.join old idx)
    | None -> Hashtbl.add hulls key idx
  in
  List.iter
    (fun name ->
      match Callgraph.id g name with
      | None -> ()
      | Some i ->
          let f = Callgraph.func g i in
          if f.Extract.stmts <> [] then
            interval_pass name f
              ~record_violation:(fun v -> violations := v :: !violations)
              ~record_hull)
    reach;
  let bounds = List.sort_uniq compare !violations in
  let ct = ct_pass ~table g ~entry in
  let index_hulls =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) hulls []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { frames; stack; worst_chain; bounds; ct; index_hulls }

(* ------------------------------------------------------------------ *)
(* Concrete reference interpreter (QCheck soundness oracle)            *)
(* ------------------------------------------------------------------ *)

module Concrete = struct
  type access = { in_function : string; buffer : string; index : int; within : bool }
  type obs = { max_stack_bytes : int; accesses : access list; out_of_fuel : bool }

  exception Out_of_fuel
  exception Ret of int

  (* saturating arithmetic mirroring Domains.Interval's endpoint math *)
  let sat_add a b =
    let s = a + b in
    if a > 0 && b > 0 && s < 0 then max_int
    else if a < 0 && b < 0 && s >= 0 then min_int
    else s

  let sat_neg n = if n = min_int then max_int else -n
  let sat_sub a b = sat_add a (sat_neg b)

  let sat_mul a b =
    if a = 0 || b = 0 then 0
    else
      let p = a * b in
      if p / b <> a || (a = -1 && b = min_int) || (b = -1 && a = min_int) then
        if a > 0 = (b > 0) then max_int else min_int
      else p

  let concrete_binop op a b =
    match op with
    | Extract.Add -> sat_add a b
    | Extract.Sub -> sat_sub a b
    | Extract.Mul -> sat_mul a b
    | Extract.Div -> if b = 0 then 0 else if a = min_int && b = -1 then max_int else a / b
    | Extract.Mod -> if b = 0 then 0 else a mod b
    | Extract.Band -> a land b
    | Extract.Eq -> if a = b then 1 else 0
    | Extract.Ne -> if a <> b then 1 else 0
    | Extract.Lt -> if a < b then 1 else 0
    | Extract.Le -> if a <= b then 1 else 0

  let run ?(max_steps = 200_000) ?(args = []) g ~entry =
    let accesses = ref [] in
    let max_stack = ref 0 in
    let fuel = ref max_steps in
    let tick () =
      decr fuel;
      if !fuel <= 0 then raise Out_of_fuel
    in
    let note depth = if depth > !max_stack then max_stack := depth in
    let rec call depth fname args =
      match Callgraph.id g fname with
      | None ->
          note (sat_add depth opaque_frame_bytes);
          0
      | Some i ->
          let f = Callgraph.func g i in
          let depth = sat_add depth (frame_bytes f) in
          note depth;
          if f.Extract.stmts = [] then begin
            (* shape-only: visit callees in body order, no data flow *)
            Array.iter
              (fun c ->
                tick ();
                match c with
                | Callgraph.Defined j -> ignore (call depth (Callgraph.name g j) [])
                | Callgraph.External _ -> note (sat_add depth opaque_frame_bytes))
              (Callgraph.calls g i);
            0
          end
          else begin
            let env : (string, int) Hashtbl.t = Hashtbl.create 8 in
            let bufs : (string, int array) Hashtbl.t = Hashtbl.create 4 in
            List.iteri
              (fun k p ->
                Hashtbl.replace env p (match List.nth_opt args k with Some v -> v | None -> 0))
              f.Extract.params;
            let record buf i within =
              accesses := { in_function = fname; buffer = buf; index = i; within } :: !accesses
            in
            let rec eval = function
              | Extract.Num n -> n
              | Extract.Var v -> ( match Hashtbl.find_opt env v with Some v -> v | None -> 0)
              | Extract.Bin (op, a, b) ->
                  let a = eval a in
                  let b = eval b in
                  concrete_binop op a b
              | Extract.Load { buf; index } -> (
                  let i = eval index in
                  match Hashtbl.find_opt bufs buf with
                  | None -> 0 (* undeclared: the abstract side skips these too *)
                  | Some arr ->
                      if i >= 0 && i < Array.length arr then begin
                        record buf i true;
                        arr.(i)
                      end
                      else begin
                        record buf i false;
                        0
                      end)
            in
            let rec exec stmt =
              tick ();
              match stmt with
              | Extract.Local { name; elems; _ } ->
                  Hashtbl.replace bufs name (Array.make (max elems 0) 0)
              | Extract.Assign { dst; src } -> Hashtbl.replace env dst (eval src)
              | Extract.Store { buf; index; src } -> (
                  let i = eval index in
                  let v = eval src in
                  match Hashtbl.find_opt bufs buf with
                  | None -> ()
                  | Some arr ->
                      if i >= 0 && i < Array.length arr then begin
                        record buf i true;
                        arr.(i) <- v
                      end
                      else record buf i false)
              | Extract.Call { dst; callee; args } ->
                  let vs = List.map eval args in
                  let r = call depth callee vs in
                  (match dst with Some d -> Hashtbl.replace env d r | None -> ())
              | Extract.Return e -> raise (Ret (match e with Some e -> eval e | None -> 0))
              | Extract.If { cond; then_; else_ } ->
                  if eval cond <> 0 then List.iter exec then_ else List.iter exec else_
              | Extract.For { var; lo; hi; body } ->
                  let l = eval lo in
                  let h = eval hi in
                  if l >= h then Hashtbl.replace env var l
                  else begin
                    let k = ref l in
                    while !k < h do
                      tick ();
                      Hashtbl.replace env var !k;
                      List.iter exec body;
                      k := sat_add !k 1
                    done;
                    Hashtbl.replace env var h
                  end
            in
            try
              List.iter exec f.Extract.stmts;
              0
            with Ret v -> v
          end
    in
    let out_of_fuel =
      try
        ignore (call 0 entry args);
        false
      with Out_of_fuel -> true
    in
    { max_stack_bytes = !max_stack; accesses = List.rev !accesses; out_of_fuel }
end
