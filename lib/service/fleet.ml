module Platform = Flicker_core.Platform
module Timing = Flicker_hw.Timing
module Clock = Flicker_hw.Clock
module Machine = Flicker_hw.Machine
module Injector = Flicker_fault.Injector
module Privacy_ca = Flicker_tpm.Privacy_ca
module Prng = Flicker_crypto.Prng
module Metrics = Flicker_obs.Metrics

type config = {
  platforms : int;
  queue_depth : int;
  batch_size : int;
  policy : Dispatch.policy;
  seed : string;
  key_bits : int;
  timing : Timing.t;
  faults : Injector.config option;
  retry_budget : int;
  breaker_failures : int;
  breaker_cooldown_ms : float;
}

let default_config =
  {
    platforms = 2;
    queue_depth = 32;
    batch_size = 4;
    policy = Dispatch.Least_loaded;
    seed = "fleet";
    key_bits = 512;
    timing = Timing.default;
    faults = None;
    retry_budget = 0;
    breaker_failures = 0;
    breaker_cooldown_ms = 2000.0;
  }

(* one bounded admission queue per tier; the shared [queue_depth] bound
   applies to their sum, and dispatch drains Interactive before Batch *)
let tier_index = function Request.Interactive -> 0 | Request.Batch -> 1
let n_tiers = List.length Request.all_tiers

type pstate = {
  platform : Platform.t;
  index : int;
  queues : Request.t Queue.t array;  (* indexed by [tier_index] *)
  mutable busy : bool;
  mutable completed : int;
  mutable up : bool;  (* false while crashed and rebooting *)
  mutable down_until : float;
  mutable breaker_until : float;  (* shedding load until this instant *)
  mutable consecutive_failures : int;  (* all-failed batches in a row *)
}

type event = Arrival of Request.t | Wake of int | Recover of int

type t = {
  cfg : config;
  workload : Workload.t;
  members : pstate array;
  events : event Event_queue.t;
  metrics : Metrics.t;
  arrival_rng : Prng.t;
  ca_key : Flicker_crypto.Rsa.public;
  rr_cursor : int ref;
  mutable now : float;
  mutable next_id : int;
  mutable submitted : int;
  submitted_by_tier : int array;  (* indexed by [tier_index] *)
  (* a front-end (the serving tier's result cache) consulted at arrival:
     [Some output] completes the request without touching a platform *)
  mutable interceptor : (Request.t -> string option) option;
  (* static-analysis admission gate consulted at submit time: [Some
     reason] refuses the request before it ever reaches the network *)
  mutable admission_gate : (Request.t -> string option) option;
  (* observers of platform crashes (cache invalidation hooks) *)
  mutable crash_hooks : (int -> unit) list;
  (* id -> finalized (request, disposition); insertion keyed by id *)
  finalized : (int, Request.t * Request.disposition) Hashtbl.t;
}

let create ?(config = default_config) workload =
  if config.platforms < 1 then invalid_arg "Fleet.create: need at least one platform";
  if config.queue_depth < 1 then invalid_arg "Fleet.create: queue_depth must be >= 1";
  if config.batch_size < 1 then invalid_arg "Fleet.create: batch_size must be >= 1";
  if config.retry_budget < 0 then invalid_arg "Fleet.create: negative retry budget";
  let privacy_ca =
    Privacy_ca.create
      (Prng.create ~seed:(config.seed ^ "/privacy-ca"))
      ~name:"FleetPrivacyCA" ~key_bits:config.key_bits
  in
  let members =
    Array.init config.platforms (fun i ->
        let platform =
          Platform.create
            ~seed:(Printf.sprintf "%s/platform-%d" config.seed i)
            ~timing:config.timing ~key_bits:config.key_bits ~ca:privacy_ca ()
        in
        workload.Workload.prepare platform i;
        {
          platform;
          index = i;
          queues = Array.init n_tiers (fun _ -> Queue.create ());
          busy = false;
          completed = 0;
          up = true;
          down_until = 0.0;
          breaker_until = 0.0;
          consecutive_failures = 0;
        })
  in
  (* fault injectors go in only after [prepare]: setup work (CA keygen
     sessions, ...) is provisioning, not the serving path under test *)
  (match config.faults with
  | None -> ()
  | Some fcfg ->
      Array.iteri
        (fun i (m : pstate) ->
          Machine.set_injector m.platform.Platform.machine
            (Injector.create ~config:fcfg
               ~seed:(Printf.sprintf "%s/fault-%d" config.seed i)
               ()))
        members);
  (* the platforms' prepare work (CA keygen sessions, ...) consumed
     different amounts of virtual time on each clock; global time starts
     at the latest of them so no platform starts in the coordinator's
     past *)
  let now =
    Array.fold_left (fun acc m -> max acc (Platform.now_ms m.platform)) 0.0 members
  in
  {
    cfg = config;
    workload;
    members;
    events = Event_queue.create ();
    metrics = Metrics.create ();
    arrival_rng = Prng.create ~seed:(config.seed ^ "/arrivals");
    ca_key = Privacy_ca.public_key privacy_ca;
    rr_cursor = ref 0;
    now;
    next_id = 1;
    submitted = 0;
    submitted_by_tier = Array.make n_tiers 0;
    interceptor = None;
    admission_gate = None;
    crash_hooks = [];
    finalized = Hashtbl.create 64;
  }

let config t = t.cfg
let workload_name t = t.workload.Workload.name
let platform t i = t.members.(i).platform
let verifier_key t = t.ca_key
let now_ms t = t.now
let metrics t = t.metrics
let set_interceptor t f = t.interceptor <- Some f
let set_admission_gate t f = t.admission_gate <- Some f
let add_crash_hook t f = t.crash_hooks <- t.crash_hooks @ [ f ]
let queued_depth (m : pstate) =
  Array.fold_left (fun acc q -> acc + Queue.length q) 0 m.queues

let finalize t req disposition =
  Hashtbl.replace t.finalized req.Request.id (req, disposition)

let transit_ms t ~bytes = Timing.network_ms t.cfg.timing ~bytes

(* One boundary convention for every deadline comparison, queued or
   completed: an instant exactly at the deadline is still on time. *)
let past_deadline ~deadline_ms ~at_ms =
  match deadline_ms with Some d -> at_ms > d | None -> false

let is_available t (m : pstate) = m.up && m.breaker_until <= t.now
let platform_up t i = is_available t t.members.(i)

let submit t ?client ?home ?(tier = Request.Batch) ?deadline_ms ?sent_ms payload =
  (match home with
  | Some h when h < 0 || h >= t.cfg.platforms ->
      invalid_arg
        (Printf.sprintf "Fleet.submit: home platform %d outside fleet of %d" h
           t.cfg.platforms)
  | _ -> ());
  (match deadline_ms with
  | Some d when d <= 0.0 -> invalid_arg "Fleet.submit: deadline must be positive"
  | _ -> ());
  let sent = max t.now (Option.value sent_ms ~default:t.now) in
  let arrival = sent +. transit_ms t ~bytes:(String.length payload) in
  let req =
    {
      Request.id = t.next_id;
      payload;
      client;
      home;
      tier;
      sent_ms = sent;
      arrival_ms = arrival;
      deadline_ms = Option.map (fun d -> sent +. d) deadline_ms;
      attempts = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  t.submitted <- t.submitted + 1;
  let ti = tier_index tier in
  t.submitted_by_tier.(ti) <- t.submitted_by_tier.(ti) + 1;
  (match t.admission_gate with
  | Some gate when gate req <> None ->
      (* the PAL behind this workload failed static analysis: refuse at
         the front door, before any network or queue resources *)
      Metrics.incr t.metrics "fleet.analysis_rejected";
      finalize t req
        (Request.Rejected { at_ms = sent; platform = -1; queue_depth = 0 })
  | _ -> Event_queue.push t.events ~at_ms:arrival (Arrival req));
  req.Request.id

let submit_open_loop t ~clients ~per_client ~mean_gap_ms ?tier ?deadline_ms ~payload () =
  if clients < 1 || per_client < 1 then
    invalid_arg "Fleet.submit_open_loop: need at least one client and request";
  if mean_gap_ms < 0.0 then invalid_arg "Fleet.submit_open_loop: negative gap";
  let exponential () =
    (* inverse-CDF draw from the fleet's deterministic generator *)
    let u = float_of_int (1 + Prng.int_below t.arrival_rng 1_000_000) /. 1_000_001. in
    -.mean_gap_ms *. log u
  in
  for c = 0 to clients - 1 do
    let at = ref t.now in
    for seq = 0 to per_client - 1 do
      at := !at +. exponential ();
      ignore
        (submit t
           ~client:(Printf.sprintf "client-%d" c)
           ?tier ?deadline_ms ~sent_ms:!at
           (payload ~client:c ~seq))
    done
  done

let loads t =
  Array.map
    (fun m ->
      {
        Dispatch.queued = queued_depth m;
        busy = m.busy;
        available = is_available t m;
      })
    t.members

(* crash estimate: how long the dying batch would have run, so the crash
   point lands mid-session rather than at a phase boundary *)
let service_estimate t =
  match Metrics.histogram t.metrics "fleet.service_ms" with
  | Some h when h.Metrics.count > 0 -> h.Metrics.mean
  | _ -> 200.0

(* dispatch up to a batch on platform [i] if it is up, idle, and has
   work; [admit]/[requeue] and [pump] are mutually recursive because a
   crash inside a dispatch re-admits the victims elsewhere *)
let rec pump t i =
  let m = t.members.(i) in
  if is_available t m && not m.busy then begin
    (* requests whose deadline passed while queued never reach a session *)
    let rec drop_expired q =
      match Queue.peek_opt q with
      | Some r
        when past_deadline ~deadline_ms:r.Request.deadline_ms ~at_ms:t.now ->
          ignore (Queue.pop q);
          Metrics.incr t.metrics "fleet.expired";
          finalize t r (Request.Expired { at_ms = t.now });
          drop_expired q
      | _ -> ()
    in
    Array.iter drop_expired m.queues;
    (* tiers drain strictly in priority order — Interactive ahead of any
       queued Batch work — but may share one session batch *)
    let rec take qi n acc =
      if n = 0 || qi >= n_tiers then List.rev acc
      else
        match Queue.take_opt m.queues.(qi) with
        | None -> take (qi + 1) n acc
        | Some r -> take qi (n - 1) (r :: acc)
    in
    match take 0 t.cfg.batch_size [] with
    | [] -> ()
    | batch -> (
        let k = List.length batch in
        (* clock coherence: bring this platform's idle clock up to the
           global virtual time before it serves anything *)
        let pnow = Platform.now_ms m.platform in
        if pnow < t.now then
          Clock.advance m.platform.Platform.machine.Machine.clock (t.now -. pnow);
        let crash_now =
          match Machine.injector m.platform.Platform.machine with
          | None -> None
          | Some inj -> Injector.session_crash inj ~now_ms:t.now
        in
        match crash_now with
        | Some frac ->
            (* the machine dies mid-session: the partially served batch
               is lost in flight, volatile state with it *)
            Machine.charge m.platform.Platform.machine
              (frac *. service_estimate t);
            crash t i ~victims:batch
        | None ->
            let dispatched = Platform.now_ms m.platform in
            m.busy <- true;
            Metrics.incr t.metrics "fleet.batches";
            Metrics.observe t.metrics "fleet.batch_fill" (float_of_int k);
            let results = t.workload.Workload.run_batch m.platform batch in
            let finished = Platform.now_ms m.platform in
            Metrics.observe t.metrics "fleet.service_ms" (finished -. dispatched);
            let results =
              if List.length results = k then results
              else
                List.map
                  (fun _ -> Error "workload returned wrong number of results")
                  batch
            in
            List.iter2
              (fun r result ->
                match result with
                | Ok output ->
                    let delivered =
                      finished +. transit_ms t ~bytes:(String.length output)
                    in
                    let latency = delivered -. r.Request.sent_ms in
                    (* the client's deadline is about when the response
                       reaches it, so the return transit counts *)
                    let missed =
                      past_deadline ~deadline_ms:r.Request.deadline_ms
                        ~at_ms:delivered
                    in
                    Metrics.incr t.metrics "fleet.completed";
                    if missed then Metrics.incr t.metrics "fleet.deadline_misses";
                    Metrics.observe t.metrics "fleet.latency_ms" latency;
                    m.completed <- m.completed + 1;
                    finalize t r
                      (Request.Completed
                         {
                           output;
                           platform = i;
                           batch = k;
                           dispatched_ms = dispatched;
                           finished_ms = finished;
                           latency_ms = latency;
                           missed_deadline = missed;
                         })
                | Error reason ->
                    Metrics.incr t.metrics "fleet.failed_executions";
                    requeue t r ~at_ms:finished ~reason)
              batch results;
            (* circuit breaker: a run of batches where nothing succeeded
               marks the member sick; shed its load instead of queueing
               more onto it *)
            if t.cfg.breaker_failures > 0 then begin
              let all_failed =
                List.for_all (fun r -> Result.is_error r) results
              in
              if not all_failed then m.consecutive_failures <- 0
              else begin
                m.consecutive_failures <- m.consecutive_failures + 1;
                if m.consecutive_failures >= t.cfg.breaker_failures then begin
                  m.consecutive_failures <- 0;
                  m.breaker_until <- finished +. t.cfg.breaker_cooldown_ms;
                  Metrics.incr t.metrics "fleet.breaker_opens";
                  Machine.fault_event m.platform.Platform.machine
                    "fleet.breaker_open"
                    ~args:[ ("platform", Flicker_obs.Tracer.Count i) ];
                  Event_queue.push t.events ~at_ms:m.breaker_until (Recover i);
                  shed_queue t i ~reason:"circuit breaker open"
                end
              end
            end;
            (* the machine is monopolized until [finished]; the Wake
               frees it and pulls the next batch *)
            Event_queue.push t.events ~at_ms:finished (Wake i))
  end

(* a request bounced off platform [i] (crash, shed, or failed execution):
   send it back through the dispatcher if its budget allows, else fail it
   explicitly *)
and requeue t r ~at_ms ~reason =
  if r.Request.attempts >= t.cfg.retry_budget then begin
    Metrics.incr t.metrics "fleet.failed";
    finalize t r (Request.Failed { at_ms; reason })
  end
  else begin
    Metrics.incr t.metrics "fleet.redispatched";
    admit t { r with Request.attempts = r.Request.attempts + 1 }
  end

(* re-dispatch everything queued on [i]: crash victims and breaker sheds
   both land here. Requests homed to [i] go back through [admit], which
   fails them explicitly while the member is unavailable. *)
and shed_queue t i ~reason =
  let m = t.members.(i) in
  let queued =
    List.concat_map
      (fun q ->
        let rs = List.of_seq (Queue.to_seq q) in
        Queue.clear q;
        rs)
      (Array.to_list m.queues)
  in
  List.iter
    (fun r -> requeue t r ~at_ms:t.now ~reason:(Printf.sprintf "platform %d: %s" i reason))
    queued

and crash t i ~victims =
  let m = t.members.(i) in
  let reboot_ms =
    match Machine.injector m.platform.Platform.machine with
    | Some inj -> (Injector.config inj).Injector.reboot_ms
    | None -> Injector.disabled.Injector.reboot_ms
  in
  Metrics.incr t.metrics "fleet.crashes";
  Machine.fault_event m.platform.Platform.machine "fleet.crash"
    ~args:[ ("platform", Flicker_obs.Tracer.Count i) ];
  (* volatile state is gone; TPM NV/keys survive (Platform.power_cycle) *)
  Platform.power_cycle m.platform;
  (* crash observers run before victims re-enter [admit], so a result
     cache invalidates this platform's entries ahead of any re-dispatch *)
  List.iter (fun hook -> hook i) t.crash_hooks;
  m.up <- false;
  m.busy <- false;
  m.down_until <- t.now +. reboot_ms;
  m.consecutive_failures <- 0;
  Event_queue.push t.events ~at_ms:m.down_until (Recover i);
  List.iter
    (fun r ->
      requeue t r ~at_ms:t.now
        ~reason:(Printf.sprintf "platform %d crashed mid-session" i))
    victims;
  shed_queue t i ~reason:"crashed mid-session"

and admit t req =
  let cached =
    match t.interceptor with None -> None | Some f -> f req
  in
  match cached with
  | Some output ->
      (* served from the front end: the client still pays the return
         transit, but no platform queue or session is involved *)
      let delivered = t.now +. transit_ms t ~bytes:(String.length output) in
      let latency = delivered -. req.Request.sent_ms in
      let missed =
        past_deadline ~deadline_ms:req.Request.deadline_ms ~at_ms:delivered
      in
      Metrics.incr t.metrics "fleet.completed";
      Metrics.incr t.metrics "fleet.cache_served";
      if missed then Metrics.incr t.metrics "fleet.deadline_misses";
      Metrics.observe t.metrics "fleet.latency_ms" latency;
      finalize t req
        (Request.Completed
           {
             output;
             platform = -1;
             batch = 0;
             dispatched_ms = t.now;
             finished_ms = t.now;
             latency_ms = latency;
             missed_deadline = missed;
           })
  | None -> dispatch t req

and dispatch t req =
  match Dispatch.select t.cfg.policy ~cursor:t.rr_cursor ~request:req (loads t) with
  | None -> (
      (* no available platform can take it; a homed request must fail
         loudly — rerouting it would silently serve without its sealed
         state *)
      match req.Request.home with
      | Some h ->
          Metrics.incr t.metrics "fleet.home_unavailable";
          finalize t req
            (Request.Failed
               {
                 at_ms = t.now;
                 reason =
                   Printf.sprintf
                     "home platform %d unavailable: sealed state cannot be \
                      served elsewhere"
                     h;
               })
      | None ->
          Metrics.incr t.metrics "fleet.rejected";
          finalize t req
            (Request.Rejected { at_ms = t.now; platform = -1; queue_depth = 0 }))
  | Some target ->
      let m = t.members.(target) in
      let depth = queued_depth m in
      if depth >= t.cfg.queue_depth then begin
        Metrics.incr t.metrics "fleet.rejected";
        finalize t req
          (Request.Rejected { at_ms = t.now; platform = target; queue_depth = depth })
      end
      else begin
        Metrics.incr t.metrics "fleet.admitted";
        Queue.add req m.queues.(tier_index req.Request.tier);
        Metrics.observe t.metrics "fleet.queue_depth" (float_of_int (depth + 1));
        pump t target
      end

let crash_platform t i =
  if i < 0 || i >= Array.length t.members then
    invalid_arg "Fleet.crash_platform: platform index outside fleet";
  let m = t.members.(i) in
  if m.up then crash t i ~victims:[]

let run ?until_ms t =
  let within at =
    match until_ms with None -> true | Some limit -> at <= limit
  in
  let rec loop () =
    match Event_queue.peek_ms t.events with
    | None -> ()
    | Some at when not (within at) -> ()
    | Some _ ->
        (match Event_queue.pop t.events with
        | None -> ()
        | Some (at, ev) -> (
            t.now <- max t.now at;
            match ev with
            | Arrival req -> admit t req
            | Wake i ->
                t.members.(i).busy <- false;
                pump t i
            | Recover i ->
                let m = t.members.(i) in
                if (not m.up) && m.down_until <= t.now then begin
                  m.up <- true;
                  m.consecutive_failures <- 0;
                  Machine.fault_event m.platform.Platform.machine "fleet.recover"
                    ~args:[ ("platform", Flicker_obs.Tracer.Count i) ]
                end;
                (* breaker cooldowns also land here: pumping is harmless
                   when the member is still unavailable *)
                pump t i));
        loop ()
  in
  loop ()

let dispositions t =
  Hashtbl.fold (fun id entry acc -> (id, entry) :: acc) t.finalized []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let disposition_of t id =
  Option.map snd (Hashtbl.find_opt t.finalized id)

type tier_summary = {
  tier : Request.tier;
  t_submitted : int;
  t_completed : int;
  t_rejected : int;
  t_expired : int;
  t_failed : int;
  t_deadline_misses : int;
  t_p50_ms : float;
  t_p95_ms : float;
}

type summary = {
  submitted : int;
  completed : int;
  rejected : int;
  expired : int;
  failed : int;
  deadline_misses : int;
  makespan_ms : float;
  throughput_rps : float;
  latency_mean_ms : float;
  latency_p50_ms : float;
  latency_p95_ms : float;
  latency_max_ms : float;
  sessions : int;
  busy_retries : int;
  per_platform : int array;
  crashes : int;
  redispatched : int;
  breaker_opens : int;
  tpm_faults : int;
  dma_storms : int;
  cache_served : int;  (* completions answered by the front-end cache *)
  analysis_rejected : int;  (* refused by the static-analysis gate *)
  by_tier : tier_summary list;  (* in [Request.all_tiers] order *)
}

(* Nearest-rank percentile over an already-sorted array. Total on every
   sample count: a run where every request was rejected or crashed has
   no latencies at all (n = 0 -> 0.0), and a single sample must answer
   every percentile with itself. The rank is clamped into [1, n] so a
   degenerate [p] (<= 0 or >= 100) still lands on a real element
   instead of indexing outside the array. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let rank = max 1 (min n rank) in
    sorted.(rank - 1)
  end

let summary t =
  let all = dispositions t in
  let completions =
    List.filter_map
      (fun (_, d) -> match d with Request.Completed c -> Some c | _ -> None)
      all
  in
  let count f = List.length (List.filter f all) in
  let latencies =
    Array.of_list (List.map (fun c -> c.Request.latency_ms) completions)
  in
  Array.sort compare latencies;
  let first_sent =
    List.fold_left (fun acc (r, _) -> min acc r.Request.sent_ms) infinity all
  in
  let last_finish =
    List.fold_left
      (fun acc c -> max acc c.Request.finished_ms)
      neg_infinity completions
  in
  let makespan =
    if completions = [] then 0.0 else max 0.0 (last_finish -. first_sent)
  in
  let n_completed = List.length completions in
  let sum = Array.fold_left ( +. ) 0.0 latencies in
  let machine_counter name =
    Array.fold_left
      (fun acc m ->
        acc + Metrics.counter m.platform.Platform.machine.Machine.metrics name)
      0 t.members
  in
  let tier_summary tier =
    let of_tier =
      List.filter (fun ((r : Request.t), _) -> r.Request.tier = tier) all
    in
    let tcount f = List.length (List.filter f of_tier) in
    let tcompletions =
      List.filter_map
        (fun (_, d) -> match d with Request.Completed c -> Some c | _ -> None)
        of_tier
    in
    let tlat =
      Array.of_list (List.map (fun c -> c.Request.latency_ms) tcompletions)
    in
    Array.sort compare tlat;
    {
      tier;
      t_submitted = t.submitted_by_tier.(tier_index tier);
      t_completed = List.length tcompletions;
      t_rejected =
        tcount (fun (_, d) -> match d with Request.Rejected _ -> true | _ -> false);
      t_expired =
        tcount (fun (_, d) -> match d with Request.Expired _ -> true | _ -> false);
      t_failed =
        tcount (fun (_, d) -> match d with Request.Failed _ -> true | _ -> false);
      t_deadline_misses =
        List.length
          (List.filter (fun c -> c.Request.missed_deadline) tcompletions);
      t_p50_ms = percentile tlat 50.0;
      t_p95_ms = percentile tlat 95.0;
    }
  in
  {
    submitted = t.submitted;
    completed = n_completed;
    rejected = count (fun (_, d) -> match d with Request.Rejected _ -> true | _ -> false);
    expired = count (fun (_, d) -> match d with Request.Expired _ -> true | _ -> false);
    failed = count (fun (_, d) -> match d with Request.Failed _ -> true | _ -> false);
    deadline_misses =
      List.length (List.filter (fun c -> c.Request.missed_deadline) completions);
    makespan_ms = makespan;
    throughput_rps =
      (if makespan > 0.0 then float_of_int n_completed /. (makespan /. 1000.0)
       else 0.0);
    latency_mean_ms = (if n_completed = 0 then 0.0 else sum /. float_of_int n_completed);
    latency_p50_ms = percentile latencies 50.0;
    latency_p95_ms = percentile latencies 95.0;
    latency_max_ms = (if n_completed = 0 then 0.0 else latencies.(n_completed - 1));
    sessions =
      Array.fold_left
        (fun acc m -> acc + m.platform.Platform.sessions_run)
        0 t.members;
    busy_retries = machine_counter "session.busy_retries";
    per_platform = Array.map (fun (m : pstate) -> m.completed) t.members;
    crashes = Metrics.counter t.metrics "fleet.crashes";
    redispatched = Metrics.counter t.metrics "fleet.redispatched";
    breaker_opens = Metrics.counter t.metrics "fleet.breaker_opens";
    tpm_faults = machine_counter "fault.tpm.busy" + machine_counter "fault.tpm.slow";
    dma_storms = machine_counter "fault.dma_storms";
    cache_served = Metrics.counter t.metrics "fleet.cache_served";
    analysis_rejected = Metrics.counter t.metrics "fleet.analysis_rejected";
    by_tier = List.map tier_summary Request.all_tiers;
  }

let pp_summary fmt s =
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt
    "submitted %d: %d completed (%d past deadline), %d rejected, %d \
     expired, %d failed@,\
     makespan %.1f ms, throughput %.2f req/s over %d sessions (%d busy \
     retries)@,\
     latency ms: mean %.1f / p50 %.1f / p95 %.1f / max %.1f@,\
     faults: %d crashes, %d re-dispatches, %d breaker opens, %d TPM, %d \
     DMA storms@,\
     per-platform completions: %s"
    s.submitted s.completed s.deadline_misses s.rejected s.expired s.failed
    s.makespan_ms s.throughput_rps s.sessions s.busy_retries s.latency_mean_ms
    s.latency_p50_ms s.latency_p95_ms s.latency_max_ms s.crashes s.redispatched
    s.breaker_opens s.tpm_faults s.dma_storms
    (String.concat " "
       (Array.to_list (Array.map string_of_int s.per_platform)));
  if s.cache_served > 0 then
    Format.fprintf fmt "@,cache-served completions: %d" s.cache_served;
  if s.analysis_rejected > 0 then
    Format.fprintf fmt "@,rejected by analysis gate: %d" s.analysis_rejected;
  List.iter
    (fun ts ->
      if ts.t_submitted > 0 then
        Format.fprintf fmt
          "@,%s tier: %d submitted, %d completed (%d past deadline), %d \
           rejected, %d expired, %d failed, p50 %.1f ms, p95 %.1f ms"
          (Request.tier_name ts.tier) ts.t_submitted ts.t_completed
          ts.t_deadline_misses ts.t_rejected ts.t_expired ts.t_failed
          ts.t_p50_ms ts.t_p95_ms)
    s.by_tier;
  Format.pp_close_box fmt ()
