module Platform = Flicker_core.Platform
module Timing = Flicker_hw.Timing
module Machine = Flicker_hw.Machine
module Injector = Flicker_fault.Injector
module Privacy_ca = Flicker_tpm.Privacy_ca
module Prng = Flicker_crypto.Prng
module Metrics = Flicker_obs.Metrics

type config = {
  platforms : int;
  queue_depth : int;
  batch_size : int;
  policy : Dispatch.policy;
  seed : string;
  key_bits : int;
  timing : Timing.t;
  faults : Injector.config option;
  retry_budget : int;
  breaker_failures : int;
  breaker_cooldown_ms : float;
  shards : int;
  domains : int;
  epoch_ms : float;
}

let default_config =
  {
    platforms = 2;
    queue_depth = 32;
    batch_size = 4;
    policy = Dispatch.Least_loaded;
    seed = "fleet";
    key_bits = 512;
    timing = Timing.default;
    faults = None;
    retry_budget = 0;
    breaker_failures = 0;
    breaker_cooldown_ms = 2000.0;
    shards = 1;
    domains = 1;
    epoch_ms = 250.0;
  }

let tier_index = Shard.tier_index
let n_tiers = Shard.n_tiers

type t = {
  cfg : config;
  workload : Workload.t;
  shards : Shard.t array;
  arrival_rng : Prng.t;
  ca_key : Flicker_crypto.Rsa.public;
  (* shared with every shard: [set_interceptor]/[add_crash_hook] after
     creation must be visible inside [Shard.drain] *)
  interceptor : (Request.t -> string option) option ref;
  crash_hooks : (int -> unit) list ref;
  (* which shard takes the next unconstrained request; untouched in a
     single-shard fleet so the legacy path is byte-identical *)
  route_cursor : int ref;
  mutable now : float;
  mutable next_id : int;
  mutable submitted : int;
  submitted_by_tier : int array;  (* indexed by [tier_index] *)
  (* static-analysis admission gate consulted at submit time: [Some
     reason] refuses the request before it ever reaches the network *)
  mutable admission_gate : (Request.t -> string option) option;
  (* fleet-level series (today: [fleet.analysis_rejected]); everything
     on the serving path lives in the shard registries *)
  metrics0 : Metrics.t;
  (* requests finalized before reaching any shard (gate refusals) *)
  finalized0 : (int, Request.t * Request.disposition) Hashtbl.t;
}

(* Platforms are split into [shards] contiguous windows, as balanced as
   they come: the first [platforms mod shards] windows get one extra.
   The split depends only on the two counts — never on [domains] — so
   the shard structure, and with it the whole simulation, is a pure
   function of the config. *)
let shard_bounds ~platforms ~shards s =
  let base = platforms / shards and extra = platforms mod shards in
  let gstart = (s * base) + min s extra in
  let count = base + if s < extra then 1 else 0 in
  (gstart, count)

let shard_of_platform ~platforms ~shards g =
  let base = platforms / shards and extra = platforms mod shards in
  let boundary = extra * (base + 1) in
  if g < boundary then g / (base + 1) else extra + ((g - boundary) / base)

let create ?(config = default_config) workload =
  if config.platforms < 1 then invalid_arg "Fleet.create: need at least one platform";
  if config.queue_depth < 1 then invalid_arg "Fleet.create: queue_depth must be >= 1";
  if config.batch_size < 1 then invalid_arg "Fleet.create: batch_size must be >= 1";
  if config.retry_budget < 0 then invalid_arg "Fleet.create: negative retry budget";
  if config.shards < 1 || config.shards > config.platforms then
    invalid_arg "Fleet.create: shards must be within [1, platforms]";
  if config.domains < 1 then invalid_arg "Fleet.create: need at least one domain";
  if not (config.epoch_ms > 0.0) then
    invalid_arg "Fleet.create: epoch_ms must be positive";
  let privacy_ca =
    Privacy_ca.create
      (Prng.create ~seed:(config.seed ^ "/privacy-ca"))
      ~name:"FleetPrivacyCA" ~key_bits:config.key_bits
  in
  (* platforms are built and prepared in global order, on one domain,
     regardless of the shard/domain split — construction is provisioning,
     and keeping it sequential keeps every seed derivation identical to
     the unsharded fleet's *)
  let platforms =
    Array.init config.platforms (fun i ->
        let platform =
          Platform.create
            ~seed:(Printf.sprintf "%s/platform-%d" config.seed i)
            ~timing:config.timing ~key_bits:config.key_bits ~ca:privacy_ca ()
        in
        workload.Workload.prepare platform i;
        platform)
  in
  (* fault injectors go in only after [prepare]: setup work (CA keygen
     sessions, ...) is provisioning, not the serving path under test *)
  (match config.faults with
  | None -> ()
  | Some fcfg ->
      Array.iteri
        (fun i p ->
          Machine.set_injector p.Platform.machine
            (Injector.create ~config:fcfg
               ~seed:(Printf.sprintf "%s/fault-%d" config.seed i)
               ()))
        platforms);
  (* the platforms' prepare work (CA keygen sessions, ...) consumed
     different amounts of virtual time on each clock; global time starts
     at the latest of them so no platform starts in any shard's past *)
  let now =
    Array.fold_left (fun acc p -> max acc (Platform.now_ms p)) 0.0 platforms
  in
  let interceptor = ref None in
  let crash_hooks = ref [] in
  let params =
    {
      Shard.queue_depth = config.queue_depth;
      batch_size = config.batch_size;
      policy = config.policy;
      timing = config.timing;
      retry_budget = config.retry_budget;
      breaker_failures = config.breaker_failures;
      breaker_cooldown_ms = config.breaker_cooldown_ms;
      gtotal = config.platforms;
      n_shards = config.shards;
    }
  in
  let shards =
    Array.init config.shards (fun s ->
        let gstart, count =
          shard_bounds ~platforms:config.platforms ~shards:config.shards s
        in
        Shard.create ~params ~sid:s ~gstart ~workload ~interceptor ~crash_hooks
          ~defer_effects:(config.shards > 1) ~now
          (Array.sub platforms gstart count))
  in
  {
    cfg = config;
    workload;
    shards;
    arrival_rng = Prng.create ~seed:(config.seed ^ "/arrivals");
    ca_key = Privacy_ca.public_key privacy_ca;
    interceptor;
    crash_hooks;
    route_cursor = ref 0;
    now;
    next_id = 1;
    submitted = 0;
    submitted_by_tier = Array.make n_tiers 0;
    admission_gate = None;
    metrics0 = Metrics.create ();
    finalized0 = Hashtbl.create 16;
  }

let config t = t.cfg
let workload_name t = t.workload.Workload.name
let verifier_key t = t.ca_key

(* Live even mid-run: an interceptor's TTL check during a drain must see
   the advancing virtual clock (with one shard, exactly the legacy
   event-loop [now]). [t.now] is only the creation-time floor. *)
let now_ms t =
  Array.fold_left (fun acc s -> max acc (Shard.now s)) t.now t.shards
let set_interceptor t f = t.interceptor := Some f
let set_admission_gate t f = t.admission_gate <- Some f
let add_crash_hook t f = t.crash_hooks := !(t.crash_hooks) @ [ f ]

let owning_shard t g =
  t.shards.(shard_of_platform ~platforms:t.cfg.platforms ~shards:t.cfg.shards g)

let check_platform_index t ~who g =
  if g < 0 || g >= t.cfg.platforms then
    invalid_arg (Printf.sprintf "Fleet.%s: platform index outside fleet" who)

let platform t g =
  check_platform_index t ~who:"platform" g;
  Shard.platform (owning_shard t g) g

let platform_up t g =
  check_platform_index t ~who:"platform_up" g;
  Shard.platform_up (owning_shard t g) g

let past_deadline = Shard.past_deadline
let transit_ms t ~bytes = Timing.network_ms t.cfg.timing ~bytes

(* merged view over the fleet-level registry plus every shard's, in
   shard order — a snapshot (Metrics.merge_into is order-independent,
   so the result does not depend on which domain ran which shard) *)
let metrics t =
  let m = Metrics.create () in
  Metrics.merge_into t.metrics0 ~into:m;
  Array.iter (fun s -> Metrics.merge_into (Shard.metrics s) ~into:m) t.shards;
  m

(* Which shard receives an arriving request. Placement that must be
   fleet-global happens here, before any shard sees the request: homes
   go to their owner, sealed-affinity targets to the shard owning the
   hash, and the unconstrained rest rotates round-robin over shards.
   With one shard this always answers 0 without touching the cursor. *)
let route t (req : Request.t) =
  let ns = Array.length t.shards in
  if ns = 1 then 0
  else
    match req.Request.home with
    | Some h -> shard_of_platform ~platforms:t.cfg.platforms ~shards:t.cfg.shards h
    | None -> (
        match (t.cfg.policy, req.Request.client) with
        | Dispatch.Sealed_affinity, Some c ->
            shard_of_platform ~platforms:t.cfg.platforms ~shards:t.cfg.shards
              (Dispatch.affinity_target ~client:c ~total:t.cfg.platforms)
        | _ ->
            let s = !(t.route_cursor) in
            t.route_cursor := (s + 1) mod ns;
            s)

let finalize0 t req disposition =
  Hashtbl.replace t.finalized0 req.Request.id (req, disposition)

let submit t ?client ?home ?(tier = Request.Batch) ?deadline_ms ?sent_ms payload =
  (match home with
  | Some h when h < 0 || h >= t.cfg.platforms ->
      invalid_arg
        (Printf.sprintf "Fleet.submit: home platform %d outside fleet of %d" h
           t.cfg.platforms)
  | _ -> ());
  (match deadline_ms with
  | Some d when d <= 0.0 -> invalid_arg "Fleet.submit: deadline must be positive"
  | _ -> ());
  let now = now_ms t in
  let sent = max now (Option.value sent_ms ~default:now) in
  let arrival = sent +. transit_ms t ~bytes:(String.length payload) in
  let req =
    {
      Request.id = t.next_id;
      payload;
      client;
      home;
      tier;
      sent_ms = sent;
      arrival_ms = arrival;
      deadline_ms = Option.map (fun d -> sent +. d) deadline_ms;
      attempts = 0;
      forwards = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  t.submitted <- t.submitted + 1;
  let ti = tier_index tier in
  t.submitted_by_tier.(ti) <- t.submitted_by_tier.(ti) + 1;
  (match t.admission_gate with
  | Some gate when gate req <> None ->
      (* the PAL behind this workload failed static analysis: refuse at
         the front door, before any network or queue resources *)
      Metrics.incr t.metrics0 "fleet.analysis_rejected";
      finalize0 t req
        (Request.Rejected { at_ms = sent; platform = -1; queue_depth = 0 })
  | _ -> Shard.push_arrival t.shards.(route t req) ~at_ms:arrival req);
  req.Request.id

let submit_open_loop t ~clients ~per_client ~mean_gap_ms ?tier ?deadline_ms ~payload () =
  if clients < 1 || per_client < 1 then
    invalid_arg "Fleet.submit_open_loop: need at least one client and request";
  if mean_gap_ms < 0.0 then invalid_arg "Fleet.submit_open_loop: negative gap";
  let exponential () =
    (* inverse-CDF draw from the fleet's deterministic generator *)
    let u = float_of_int (1 + Prng.int_below t.arrival_rng 1_000_000) /. 1_000_001. in
    -.mean_gap_ms *. log u
  in
  let now = now_ms t in
  for c = 0 to clients - 1 do
    let at = ref now in
    for seq = 0 to per_client - 1 do
      at := !at +. exponential ();
      ignore
        (submit t
           ~client:(Printf.sprintf "client-%d" c)
           ?tier ?deadline_ms ~sent_ms:!at
           (payload ~client:c ~seq))
    done
  done

(* Run any crash hooks the shards logged, in canonical (crash time,
   platform) order — one domain, outside any drain. Inline-mode shards
   (single-shard fleets) never log, so this is a no-op there. *)
let flush_crash_logs t =
  let logged =
    Array.fold_left (fun acc s -> acc @ Shard.take_crash_log s) [] t.shards
  in
  let logged = List.sort compare logged in
  List.iter
    (fun (_, g) -> List.iter (fun hook -> hook g) !(t.crash_hooks))
    logged

let crash_platform t g =
  check_platform_index t ~who:"crash_platform" g;
  Shard.crash_platform (owning_shard t g) g;
  (* a manual crash happens from coordinator context (between runs or
     epochs), so deferred hooks can run immediately *)
  flush_crash_logs t

let sync_now t =
  t.now <-
    Array.fold_left (fun acc s -> max acc (Shard.now s)) t.now t.shards

(* The epoch loop. Each round picks the earliest pending event time
   fleet-wide, lets every shard drain independently up to [tmin +
   epoch_ms) (a window no cross-shard message can cut into: barrier
   deliveries always land exactly at the window's end), then merges the
   shards' externalized effects in canonical order:

   1. deferred crash hooks, sorted by (crash time, platform) — cache
      invalidation before any re-dispatched request can be served;
   2. forwarded requests, sorted by (emission time, request id), each
      delivered to the ring successor of its emitting shard at exactly
      the window end.

   Both merges are pure functions of shard-local histories, and each
   shard's history is a pure function of its inputs, so the whole run is
   a pure function of the config — the domain count only decides which
   OS thread executes which shard. *)
let run_epochs ?until_ms t =
  let ns = Array.length t.shards in
  let pool = Domain_pool.create (max 1 (min t.cfg.domains ns)) in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  let nd = Domain_pool.size pool in
  let next_event () =
    Array.fold_left
      (fun acc s ->
        match Shard.next_event_ms s with None -> acc | Some a -> min acc a)
      infinity t.shards
  in
  let rec loop () =
    let tmin = next_event () in
    let beyond =
      match until_ms with Some limit -> tmin > limit | None -> tmin = infinity
    in
    if not beyond then begin
      let stop = tmin +. t.cfg.epoch_ms in
      Domain_pool.run pool (fun w ->
          Array.iteri
            (fun i s -> if i mod nd = w then Shard.drain ?until_ms ~stop_before:stop s)
            t.shards);
      flush_crash_logs t;
      let forwarded =
        Array.to_list t.shards
        |> List.concat_map (fun s ->
               List.map (fun (at, req) -> (at, req, Shard.sid s)) (Shard.take_outbox s))
        |> List.sort (fun (a, (ra : Request.t), _) (b, (rb : Request.t), _) ->
               compare (a, ra.Request.id) (b, rb.Request.id))
      in
      List.iter
        (fun (_, req, src) ->
          Shard.push_arrival t.shards.((src + 1) mod ns) ~at_ms:stop req)
        forwarded;
      loop ()
    end
  in
  loop ()

let run ?until_ms t =
  if Array.length t.shards = 1 then
    (* the unsharded fast path: one timeline drained to exhaustion on
       the calling domain, byte-identical to the pre-shard fleet *)
    Shard.drain ?until_ms ~stop_before:infinity t.shards.(0)
  else run_epochs ?until_ms t;
  sync_now t

let dispositions t =
  let acc = Hashtbl.fold (fun id e acc -> (id, e) :: acc) t.finalized0 [] in
  let acc =
    Array.fold_left
      (fun acc s ->
        Hashtbl.fold (fun id e acc -> (id, e) :: acc) (Shard.finalized s) acc)
      acc t.shards
  in
  List.sort (fun (a, _) (b, _) -> compare a b) acc |> List.map snd

let disposition_of t id =
  match Hashtbl.find_opt t.finalized0 id with
  | Some (_, d) -> Some d
  | None ->
      Array.fold_left
        (fun acc s ->
          match acc with
          | Some _ -> acc
          | None -> Option.map snd (Hashtbl.find_opt (Shard.finalized s) id))
        None t.shards

type tier_summary = {
  tier : Request.tier;
  t_submitted : int;
  t_completed : int;
  t_rejected : int;
  t_expired : int;
  t_failed : int;
  t_deadline_misses : int;
  t_p50_ms : float;
  t_p95_ms : float;
}

type summary = {
  submitted : int;
  completed : int;
  rejected : int;
  expired : int;
  failed : int;
  deadline_misses : int;
  makespan_ms : float;
  throughput_rps : float;
  latency_mean_ms : float;
  latency_p50_ms : float;
  latency_p95_ms : float;
  latency_max_ms : float;
  sessions : int;
  busy_retries : int;
  per_platform : int array;
  crashes : int;
  redispatched : int;
  forwarded : int;
  breaker_opens : int;
  tpm_faults : int;
  dma_storms : int;
  cache_served : int;  (* completions answered by the front-end cache *)
  analysis_rejected : int;  (* refused by the static-analysis gate *)
  by_tier : tier_summary list;  (* in [Request.all_tiers] order *)
}

(* Nearest-rank percentile over an already-sorted array. Total on every
   sample count: a run where every request was rejected or crashed has
   no latencies at all (n = 0 -> 0.0), and a single sample must answer
   every percentile with itself. The rank is clamped into [1, n] so a
   degenerate [p] (<= 0 or >= 100) still lands on a real element
   instead of indexing outside the array. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let rank = max 1 (min n rank) in
    sorted.(rank - 1)
  end

let summary t =
  let all = dispositions t in
  let m = metrics t in
  let completions =
    List.filter_map
      (fun (_, d) -> match d with Request.Completed c -> Some c | _ -> None)
      all
  in
  let count f = List.length (List.filter f all) in
  let latencies =
    Array.of_list (List.map (fun c -> c.Request.latency_ms) completions)
  in
  Array.sort compare latencies;
  let first_sent =
    List.fold_left (fun acc (r, _) -> min acc r.Request.sent_ms) infinity all
  in
  let last_finish =
    List.fold_left
      (fun acc c -> max acc c.Request.finished_ms)
      neg_infinity completions
  in
  let makespan =
    if completions = [] then 0.0 else max 0.0 (last_finish -. first_sent)
  in
  let n_completed = List.length completions in
  let sum = Array.fold_left ( +. ) 0.0 latencies in
  let machine_counter name =
    Array.fold_left (fun acc s -> acc + Shard.machine_counter s name) 0 t.shards
  in
  let tier_summary tier =
    let of_tier =
      List.filter (fun ((r : Request.t), _) -> r.Request.tier = tier) all
    in
    let tcount f = List.length (List.filter f of_tier) in
    let tcompletions =
      List.filter_map
        (fun (_, d) -> match d with Request.Completed c -> Some c | _ -> None)
        of_tier
    in
    let tlat =
      Array.of_list (List.map (fun c -> c.Request.latency_ms) tcompletions)
    in
    Array.sort compare tlat;
    {
      tier;
      t_submitted = t.submitted_by_tier.(tier_index tier);
      t_completed = List.length tcompletions;
      t_rejected =
        tcount (fun (_, d) -> match d with Request.Rejected _ -> true | _ -> false);
      t_expired =
        tcount (fun (_, d) -> match d with Request.Expired _ -> true | _ -> false);
      t_failed =
        tcount (fun (_, d) -> match d with Request.Failed _ -> true | _ -> false);
      t_deadline_misses =
        List.length
          (List.filter (fun c -> c.Request.missed_deadline) tcompletions);
      t_p50_ms = percentile tlat 50.0;
      t_p95_ms = percentile tlat 95.0;
    }
  in
  {
    submitted = t.submitted;
    completed = n_completed;
    rejected = count (fun (_, d) -> match d with Request.Rejected _ -> true | _ -> false);
    expired = count (fun (_, d) -> match d with Request.Expired _ -> true | _ -> false);
    failed = count (fun (_, d) -> match d with Request.Failed _ -> true | _ -> false);
    deadline_misses =
      List.length (List.filter (fun c -> c.Request.missed_deadline) completions);
    makespan_ms = makespan;
    throughput_rps =
      (if makespan > 0.0 then float_of_int n_completed /. (makespan /. 1000.0)
       else 0.0);
    latency_mean_ms = (if n_completed = 0 then 0.0 else sum /. float_of_int n_completed);
    latency_p50_ms = percentile latencies 50.0;
    latency_p95_ms = percentile latencies 95.0;
    latency_max_ms = (if n_completed = 0 then 0.0 else latencies.(n_completed - 1));
    sessions = Array.fold_left (fun acc s -> acc + Shard.sessions s) 0 t.shards;
    busy_retries = machine_counter "session.busy_retries";
    per_platform =
      Array.concat (Array.to_list (Array.map Shard.completed_counts t.shards));
    crashes = Metrics.counter m "fleet.crashes";
    redispatched = Metrics.counter m "fleet.redispatched";
    forwarded = Metrics.counter m "fleet.forwarded";
    breaker_opens = Metrics.counter m "fleet.breaker_opens";
    tpm_faults = machine_counter "fault.tpm.busy" + machine_counter "fault.tpm.slow";
    dma_storms = machine_counter "fault.dma_storms";
    cache_served = Metrics.counter m "fleet.cache_served";
    analysis_rejected = Metrics.counter m "fleet.analysis_rejected";
    by_tier = List.map tier_summary Request.all_tiers;
  }

let pp_summary fmt s =
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt
    "submitted %d: %d completed (%d past deadline), %d rejected, %d \
     expired, %d failed@,\
     makespan %.1f ms, throughput %.2f req/s over %d sessions (%d busy \
     retries)@,\
     latency ms: mean %.1f / p50 %.1f / p95 %.1f / max %.1f@,\
     faults: %d crashes, %d re-dispatches, %d breaker opens, %d TPM, %d \
     DMA storms@,\
     per-platform completions: %s"
    s.submitted s.completed s.deadline_misses s.rejected s.expired s.failed
    s.makespan_ms s.throughput_rps s.sessions s.busy_retries s.latency_mean_ms
    s.latency_p50_ms s.latency_p95_ms s.latency_max_ms s.crashes s.redispatched
    s.breaker_opens s.tpm_faults s.dma_storms
    (String.concat " "
       (Array.to_list (Array.map string_of_int s.per_platform)));
  if s.forwarded > 0 then
    Format.fprintf fmt "@,cross-shard forwards: %d" s.forwarded;
  if s.cache_served > 0 then
    Format.fprintf fmt "@,cache-served completions: %d" s.cache_served;
  if s.analysis_rejected > 0 then
    Format.fprintf fmt "@,rejected by analysis gate: %d" s.analysis_rejected;
  List.iter
    (fun ts ->
      if ts.t_submitted > 0 then
        Format.fprintf fmt
          "@,%s tier: %d submitted, %d completed (%d past deadline), %d \
           rejected, %d expired, %d failed, p50 %.1f ms, p95 %.1f ms"
          (Request.tier_name ts.tier) ts.t_submitted ts.t_completed
          ts.t_deadline_misses ts.t_rejected ts.t_expired ts.t_failed
          ts.t_p50_ms ts.t_p95_ms)
    s.by_tier;
  Format.pp_close_box fmt ()
