module Platform = Flicker_core.Platform
module Timing = Flicker_hw.Timing
module Clock = Flicker_hw.Clock
module Machine = Flicker_hw.Machine
module Injector = Flicker_fault.Injector
module Metrics = Flicker_obs.Metrics

type params = {
  queue_depth : int;
  batch_size : int;
  policy : Dispatch.policy;
  timing : Timing.t;
  retry_budget : int;
  breaker_failures : int;
  breaker_cooldown_ms : float;
  gtotal : int;
  n_shards : int;
}

(* one bounded admission queue per tier; the shared [queue_depth] bound
   applies to their sum, and dispatch drains Interactive before Batch *)
let tier_index = function Request.Interactive -> 0 | Request.Batch -> 1
let n_tiers = List.length Request.all_tiers

type pstate = {
  platform : Platform.t;
  index : int;  (* global platform index *)
  queues : Request.t Queue.t array;  (* indexed by [tier_index] *)
  mutable busy : bool;
  mutable completed : int;
  mutable up : bool;  (* false while crashed and rebooting *)
  mutable down_until : float;
  mutable breaker_until : float;  (* shedding load until this instant *)
  mutable consecutive_failures : int;  (* all-failed batches in a row *)
}

type event = Arrival of Request.t | Wake of int | Recover of int

type t = {
  params : params;
  sid : int;
  gstart : int;
  workload : Workload.t;
  members : pstate array;  (* global platforms [gstart, gstart + length) *)
  events : event Event_queue.t;
  metrics : Metrics.t;
  rr_cursor : int ref;  (* shard-local round-robin rotation *)
  (* id -> finalized (request, disposition); ids are fleet-unique, so
     the coordinator can merge shard tables without collisions *)
  finalized : (int, Request.t * Request.disposition) Hashtbl.t;
  mutable now : float;
  (* shared with the fleet so [Fleet.set_interceptor] after creation is
     seen by every shard; under [domains > 1] the installed closure must
     tolerate concurrent calls from several domains *)
  interceptor : (Request.t -> string option) option ref;
  crash_hooks : (int -> unit) list ref;
  (* a single-shard fleet runs crash hooks inline, exactly the
     pre-shard behavior; a sharded fleet only logs the crash here and
     the coordinator runs the hooks at the next epoch barrier, in
     canonical (time, platform) order, from one domain *)
  defer_effects : bool;
  mutable crash_log : (float * int) list;  (* reversed accumulation *)
  mutable outbox : (float * Request.t) list;  (* reversed accumulation *)
}

let create ~params ~sid ~gstart ~workload ~interceptor ~crash_hooks
    ~defer_effects ~now platforms =
  {
    params;
    sid;
    gstart;
    workload;
    members =
      Array.mapi
        (fun i platform ->
          {
            platform;
            index = gstart + i;
            queues = Array.init n_tiers (fun _ -> Queue.create ());
            busy = false;
            completed = 0;
            up = true;
            down_until = 0.0;
            breaker_until = 0.0;
            consecutive_failures = 0;
          })
        platforms;
    events = Event_queue.create ();
    metrics = Metrics.create ();
    rr_cursor = ref 0;
    finalized = Hashtbl.create 64;
    now;
    interceptor;
    crash_hooks;
    defer_effects;
    crash_log = [];
    outbox = [];
  }

let sid t = t.sid
let gstart t = t.gstart
let count t = Array.length t.members
let now t = t.now
let metrics t = t.metrics
let finalized t = t.finalized
let owns t g = g >= t.gstart && g < t.gstart + Array.length t.members
let member t g = t.members.(g - t.gstart)
let platform t g = (member t g).platform
let next_event_ms t = Event_queue.peek_ms t.events
let push_arrival t ~at_ms req = Event_queue.push t.events ~at_ms (Arrival req)

let take_outbox t =
  let o = List.rev t.outbox in
  t.outbox <- [];
  o

let take_crash_log t =
  let c = List.rev t.crash_log in
  t.crash_log <- [];
  c

let completed_counts t = Array.map (fun (m : pstate) -> m.completed) t.members

let sessions t =
  Array.fold_left
    (fun acc (m : pstate) -> acc + m.platform.Platform.sessions_run)
    0 t.members

let machine_counter t name =
  Array.fold_left
    (fun acc (m : pstate) ->
      acc + Metrics.counter m.platform.Platform.machine.Machine.metrics name)
    0 t.members

let queued_depth (m : pstate) =
  Array.fold_left (fun acc q -> acc + Queue.length q) 0 m.queues

let finalize t req disposition =
  Hashtbl.replace t.finalized req.Request.id (req, disposition)

let transit_ms t ~bytes = Timing.network_ms t.params.timing ~bytes

(* One boundary convention for every deadline comparison, queued or
   completed: an instant exactly at the deadline is still on time. *)
let past_deadline ~deadline_ms ~at_ms =
  match deadline_ms with Some d -> at_ms > d | None -> false

let is_available t (m : pstate) = m.up && m.breaker_until <= t.now
let platform_up t g = is_available t (member t g)

let loads t =
  Array.map
    (fun m ->
      {
        Dispatch.queued = queued_depth m;
        busy = m.busy;
        available = is_available t m;
      })
    t.members

(* crash estimate: how long the dying batch would have run, so the crash
   point lands mid-session rather than at a phase boundary *)
let service_estimate t =
  match Metrics.histogram t.metrics "fleet.service_ms" with
  | Some h when h.Metrics.count > 0 -> h.Metrics.mean
  | _ -> 200.0

(* dispatch up to a batch on global platform [g] if it is up, idle, and
   has work; [admit]/[requeue] and [pump] are mutually recursive because
   a crash inside a dispatch re-admits the victims elsewhere *)
let rec pump t g =
  let m = member t g in
  if is_available t m && not m.busy then begin
    (* requests whose deadline passed while queued never reach a session *)
    let rec drop_expired q =
      match Queue.peek_opt q with
      | Some r
        when past_deadline ~deadline_ms:r.Request.deadline_ms ~at_ms:t.now ->
          ignore (Queue.pop q);
          Metrics.incr t.metrics "fleet.expired";
          finalize t r (Request.Expired { at_ms = t.now });
          drop_expired q
      | _ -> ()
    in
    Array.iter drop_expired m.queues;
    (* tiers drain strictly in priority order — Interactive ahead of any
       queued Batch work — but may share one session batch *)
    let rec take qi n acc =
      if n = 0 || qi >= n_tiers then List.rev acc
      else
        match Queue.take_opt m.queues.(qi) with
        | None -> take (qi + 1) n acc
        | Some r -> take qi (n - 1) (r :: acc)
    in
    match take 0 t.params.batch_size [] with
    | [] -> ()
    | batch -> (
        let k = List.length batch in
        (* clock coherence: bring this platform's idle clock up to the
           shard's virtual time before it serves anything *)
        let pnow = Platform.now_ms m.platform in
        if pnow < t.now then
          Clock.advance m.platform.Platform.machine.Machine.clock (t.now -. pnow);
        let crash_now =
          match Machine.injector m.platform.Platform.machine with
          | None -> None
          | Some inj -> Injector.session_crash inj ~now_ms:t.now
        in
        match crash_now with
        | Some frac ->
            (* the machine dies mid-session: the partially served batch
               is lost in flight, volatile state with it *)
            Machine.charge m.platform.Platform.machine
              (frac *. service_estimate t);
            crash t g ~victims:batch
        | None ->
            let dispatched = Platform.now_ms m.platform in
            m.busy <- true;
            Metrics.incr t.metrics "fleet.batches";
            Metrics.observe t.metrics "fleet.batch_fill" (float_of_int k);
            let results = t.workload.Workload.run_batch m.platform batch in
            let finished = Platform.now_ms m.platform in
            Metrics.observe t.metrics "fleet.service_ms" (finished -. dispatched);
            let results =
              if List.length results = k then results
              else
                List.map
                  (fun _ -> Error "workload returned wrong number of results")
                  batch
            in
            List.iter2
              (fun r result ->
                match result with
                | Ok output ->
                    let delivered =
                      finished +. transit_ms t ~bytes:(String.length output)
                    in
                    let latency = delivered -. r.Request.sent_ms in
                    (* the client's deadline is about when the response
                       reaches it, so the return transit counts *)
                    let missed =
                      past_deadline ~deadline_ms:r.Request.deadline_ms
                        ~at_ms:delivered
                    in
                    Metrics.incr t.metrics "fleet.completed";
                    if missed then Metrics.incr t.metrics "fleet.deadline_misses";
                    Metrics.observe t.metrics "fleet.latency_ms" latency;
                    m.completed <- m.completed + 1;
                    finalize t r
                      (Request.Completed
                         {
                           output;
                           platform = g;
                           batch = k;
                           dispatched_ms = dispatched;
                           finished_ms = finished;
                           latency_ms = latency;
                           missed_deadline = missed;
                         })
                | Error reason ->
                    Metrics.incr t.metrics "fleet.failed_executions";
                    requeue t r ~at_ms:finished ~reason)
              batch results;
            (* circuit breaker: a run of batches where nothing succeeded
               marks the member sick; shed its load instead of queueing
               more onto it *)
            if t.params.breaker_failures > 0 then begin
              let all_failed =
                List.for_all (fun r -> Result.is_error r) results
              in
              if not all_failed then m.consecutive_failures <- 0
              else begin
                m.consecutive_failures <- m.consecutive_failures + 1;
                if m.consecutive_failures >= t.params.breaker_failures then begin
                  m.consecutive_failures <- 0;
                  m.breaker_until <- finished +. t.params.breaker_cooldown_ms;
                  Metrics.incr t.metrics "fleet.breaker_opens";
                  Machine.fault_event m.platform.Platform.machine
                    "fleet.breaker_open"
                    ~args:[ ("platform", Flicker_obs.Tracer.Count g) ];
                  Event_queue.push t.events ~at_ms:m.breaker_until (Recover g);
                  shed_queue t g ~reason:"circuit breaker open"
                end
              end
            end;
            (* the machine is monopolized until [finished]; the Wake
               frees it and pulls the next batch *)
            Event_queue.push t.events ~at_ms:finished (Wake g))
  end

(* a request bounced off platform [g] (crash, shed, or failed execution):
   send it back through the dispatcher if its budget allows, else fail it
   explicitly *)
and requeue t r ~at_ms ~reason =
  if r.Request.attempts >= t.params.retry_budget then begin
    Metrics.incr t.metrics "fleet.failed";
    finalize t r (Request.Failed { at_ms; reason })
  end
  else begin
    Metrics.incr t.metrics "fleet.redispatched";
    admit t { r with Request.attempts = r.Request.attempts + 1 }
  end

(* re-dispatch everything queued on [g]: crash victims and breaker sheds
   both land here. Requests homed to [g] go back through [admit], which
   fails them explicitly while the member is unavailable. *)
and shed_queue t g ~reason =
  let m = member t g in
  let queued =
    List.concat_map
      (fun q ->
        let rs = List.of_seq (Queue.to_seq q) in
        Queue.clear q;
        rs)
      (Array.to_list m.queues)
  in
  List.iter
    (fun r ->
      requeue t r ~at_ms:t.now ~reason:(Printf.sprintf "platform %d: %s" g reason))
    queued

and crash t g ~victims =
  let m = member t g in
  let reboot_ms =
    match Machine.injector m.platform.Platform.machine with
    | Some inj -> (Injector.config inj).Injector.reboot_ms
    | None -> Injector.disabled.Injector.reboot_ms
  in
  Metrics.incr t.metrics "fleet.crashes";
  Machine.fault_event m.platform.Platform.machine "fleet.crash"
    ~args:[ ("platform", Flicker_obs.Tracer.Count g) ];
  (* volatile state is gone; TPM NV/keys survive (Platform.power_cycle) *)
  Platform.power_cycle m.platform;
  (* crash observers run before victims re-enter [admit], so a result
     cache invalidates this platform's entries ahead of any re-dispatch —
     inline only in a single-shard fleet; a sharded fleet defers them to
     the barrier, where the coordinator replays all shards' crashes in
     (time, platform) order from one domain *)
  if t.defer_effects then t.crash_log <- (t.now, g) :: t.crash_log
  else List.iter (fun hook -> hook g) !(t.crash_hooks);
  m.up <- false;
  m.busy <- false;
  m.down_until <- t.now +. reboot_ms;
  m.consecutive_failures <- 0;
  Event_queue.push t.events ~at_ms:m.down_until (Recover g);
  List.iter
    (fun r ->
      requeue t r ~at_ms:t.now
        ~reason:(Printf.sprintf "platform %d crashed mid-session" g))
    victims;
  shed_queue t g ~reason:"crashed mid-session"

and admit t req =
  let cached =
    match !(t.interceptor) with None -> None | Some f -> f req
  in
  match cached with
  | Some output ->
      (* served from the front end: the client still pays the return
         transit, but no platform queue or session is involved *)
      let delivered = t.now +. transit_ms t ~bytes:(String.length output) in
      let latency = delivered -. req.Request.sent_ms in
      let missed =
        past_deadline ~deadline_ms:req.Request.deadline_ms ~at_ms:delivered
      in
      Metrics.incr t.metrics "fleet.completed";
      Metrics.incr t.metrics "fleet.cache_served";
      if missed then Metrics.incr t.metrics "fleet.deadline_misses";
      Metrics.observe t.metrics "fleet.latency_ms" latency;
      finalize t req
        (Request.Completed
           {
             output;
             platform = -1;
             batch = 0;
             dispatched_ms = t.now;
             finished_ms = t.now;
             latency_ms = latency;
             missed_deadline = missed;
           })
  | None -> dispatch t req

and dispatch t req =
  match
    Dispatch.select ~gstart:t.gstart ~gtotal:t.params.gtotal t.params.policy
      ~cursor:t.rr_cursor ~request:req (loads t)
  with
  | None -> (
      (* no available platform on this shard can take it *)
      match req.Request.home with
      | Some h ->
          (* a homed request must fail loudly — rerouting it would
             silently serve without its sealed state *)
          Metrics.incr t.metrics "fleet.home_unavailable";
          finalize t req
            (Request.Failed
               {
                 at_ms = t.now;
                 reason =
                   Printf.sprintf
                     "home platform %d unavailable: sealed state cannot be \
                      served elsewhere"
                     h;
               })
      | None ->
          if t.params.n_shards > 1 && req.Request.forwards < t.params.n_shards - 1
          then begin
            (* another shard may still have capacity: hand the request to
               the next shard around the ring at the epoch barrier. The
               hop budget guarantees a full circuit before giving up, so
               a request is only rejected once every shard has seen it —
               the sharded analogue of scanning the whole fleet. *)
            Metrics.incr t.metrics "fleet.forwarded";
            t.outbox <-
              (t.now, { req with Request.forwards = req.Request.forwards + 1 })
              :: t.outbox
          end
          else begin
            Metrics.incr t.metrics "fleet.rejected";
            finalize t req
              (Request.Rejected { at_ms = t.now; platform = -1; queue_depth = 0 })
          end)
  | Some local ->
      let m = t.members.(local) in
      let depth = queued_depth m in
      if depth >= t.params.queue_depth then begin
        Metrics.incr t.metrics "fleet.rejected";
        finalize t req
          (Request.Rejected
             { at_ms = t.now; platform = m.index; queue_depth = depth })
      end
      else begin
        Metrics.incr t.metrics "fleet.admitted";
        Queue.add req m.queues.(tier_index req.Request.tier);
        Metrics.observe t.metrics "fleet.queue_depth" (float_of_int (depth + 1));
        pump t m.index
      end

let crash_platform t g =
  let m = member t g in
  if m.up then crash t g ~victims:[]

let drain ?until_ms ~stop_before t =
  let within at =
    at < stop_before
    && match until_ms with None -> true | Some limit -> at <= limit
  in
  let rec loop () =
    match Event_queue.peek_ms t.events with
    | None -> ()
    | Some at when not (within at) -> ()
    | Some _ ->
        (match Event_queue.pop t.events with
        | None -> ()
        | Some (at, ev) -> (
            t.now <- max t.now at;
            match ev with
            | Arrival req -> admit t req
            | Wake g ->
                (member t g).busy <- false;
                pump t g
            | Recover g ->
                let m = member t g in
                if (not m.up) && m.down_until <= t.now then begin
                  m.up <- true;
                  m.consecutive_failures <- 0;
                  Machine.fault_event m.platform.Platform.machine "fleet.recover"
                    ~args:[ ("platform", Flicker_obs.Tracer.Count g) ]
                end;
                (* breaker cooldowns also land here: pumping is harmless
                   when the member is still unavailable *)
                pump t g));
        loop ()
  in
  loop ()
