(** One shard of a fleet: a contiguous window of platforms, fully owned.

    A shard holds everything mutable about its platforms — admission
    queues, breaker and crash state, its own {!Event_queue}, its own
    {!Flicker_obs.Metrics} registry, its own round-robin cursor, its own
    finalized-request table — and shares nothing writable with any other
    shard. That ownership is what lets the fleet run shards on OCaml 5
    [Domain]s: between epoch barriers each shard's [drain] touches only
    shard-local state (plus its platforms, which no other shard can
    reach), so the simulation is identical whether shards run
    sequentially on one domain or in parallel on many.

    Cross-shard effects never happen mid-epoch. A shard that cannot
    place a request locally appends it to its {e outbox}; a crash in a
    multi-shard fleet is appended to the {e crash log} instead of
    running the fleet's hooks inline. The coordinator collects both at
    the barrier and replays them in canonical order — see
    {!Fleet.run}. *)

type params = {
  queue_depth : int;
  batch_size : int;
  policy : Dispatch.policy;
  timing : Flicker_hw.Timing.t;
  retry_budget : int;
  breaker_failures : int;
  breaker_cooldown_ms : float;
  gtotal : int;  (** platforms fleet-wide, for global homes/affinity *)
  n_shards : int;  (** bounds a request's cross-shard hop budget *)
}
(** The slice of the fleet's config a shard needs to serve requests. *)

val tier_index : Request.tier -> int
(** Index of a tier's admission queue — also the fleet's indexing for
    per-tier submission counts. *)

val n_tiers : int

type t

val create :
  params:params ->
  sid:int ->
  gstart:int ->
  workload:Workload.t ->
  interceptor:(Request.t -> string option) option ref ->
  crash_hooks:(int -> unit) list ref ->
  defer_effects:bool ->
  now:float ->
  Flicker_core.Platform.t array ->
  t
(** Wrap platforms [gstart, gstart + length) (already prepared by the
    fleet) as shard [sid]. [interceptor] and [crash_hooks] are shared
    refs so hooks installed on the fleet after creation are seen here.
    With [defer_effects] (any multi-shard fleet) crashes are logged for
    the coordinator instead of running [crash_hooks] inline. [now] is
    the fleet's starting virtual time. *)

val sid : t -> int
val gstart : t -> int
val count : t -> int
val now : t -> float
(** Shard-local virtual time: the latest event this shard processed. *)

val owns : t -> int -> bool
(** Whether global platform index [g] lies in this shard's window. *)

val platform : t -> int -> Flicker_core.Platform.t
(** By global index; the caller routes via [owns]. *)

val platform_up : t -> int -> bool
val crash_platform : t -> int -> unit
(** Crash global platform [g] now (no-op when already down): volatile
    state lost, queued requests re-dispatched within their retry budget,
    recovery scheduled. In a deferred-effects shard the fleet's crash
    hooks are only logged — {!take_crash_log}. *)

val next_event_ms : t -> float option
(** Timestamp of this shard's earliest pending event. *)

val push_arrival : t -> at_ms:float -> Request.t -> unit
(** Schedule a request to reach this shard's dispatcher at [at_ms] —
    client submissions and barrier-forwarded requests alike. *)

val drain : ?until_ms:float -> stop_before:float -> t -> unit
(** Process events strictly before [stop_before] (and at most
    [until_ms], inclusive — the fleet's run bound). Touches only
    shard-owned state, so concurrent drains of distinct shards are
    race-free; [stop_before = infinity] drains to exhaustion, the
    single-shard fast path. *)

val take_outbox : t -> (float * Request.t) list
(** Requests this shard could not place locally, as [(emit_ms, req)] in
    emission order; clears the outbox. The coordinator delivers them to
    the next shard at the epoch boundary. *)

val take_crash_log : t -> (float * int) list
(** Deferred crash notifications [(crash_ms, global_platform)] in
    occurrence order; clears the log. *)

val metrics : t -> Flicker_obs.Metrics.t
(** The shard's own registry (the [fleet.*] series for its share of the
    traffic); the fleet merges these in shard order. *)

val finalized : t -> (int, Request.t * Request.disposition) Hashtbl.t
val completed_counts : t -> int array
(** Per-member completion counts, in window order. *)

val sessions : t -> int
(** Flicker sessions run across this shard's platforms. *)

val machine_counter : t -> string -> int
(** Sum of a per-machine counter over this shard's platforms. *)

val service_estimate : t -> float
(** Mean observed service time (ms), 200.0 before any observation —
    where the injector's mid-session crash point lands. *)

val past_deadline : deadline_ms:float option -> at_ms:float -> bool
(** The one deadline-boundary convention (exactly at the deadline is on
    time); re-exported by {!Fleet.past_deadline}. *)
