(* A tiny fork-join pool over OCaml 5 Domains.

   The fleet's epoch loop needs the same fan-out every few hundred
   microseconds of host time, and [Domain.spawn] per epoch would dwarf
   the work, so the pool keeps [size - 1] worker domains parked on a
   condition variable and reuses them; the caller's own domain doubles
   as worker 0. [run] is a full barrier: every worker has finished its
   slice before it returns, which is exactly the epoch-barrier semantics
   the deterministic merge protocol needs. *)

type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (int -> unit) option;
  mutable generation : int;  (* bumped once per [run]; wakes workers *)
  mutable remaining : int;  (* workers still inside the current job *)
  mutable stop : bool;
  (* first failure of the generation, re-raised at the coordinator *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable workers : unit Domain.t list;
}

let record_failure t e bt =
  Mutex.lock t.mutex;
  if t.failure = None then t.failure <- Some (e, bt);
  Mutex.unlock t.mutex

let worker t w =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.stop) && t.generation = !seen do
      Condition.wait t.work_ready t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      seen := t.generation;
      let job = Option.get t.job in
      Mutex.unlock t.mutex;
      (try job w
       with e -> record_failure t e (Printexc.get_raw_backtrace ()));
      Mutex.lock t.mutex;
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create size =
  if size < 1 then invalid_arg "Domain_pool.create: need at least one worker";
  let t =
    {
      size;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      remaining = 0;
      stop = false;
      failure = None;
      workers = [];
    }
  in
  t.workers <-
    List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let size t = t.size

let run t job =
  if t.size = 1 then job 0
  else begin
    Mutex.lock t.mutex;
    t.job <- Some job;
    t.generation <- t.generation + 1;
    t.remaining <- t.size - 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    (* even if worker 0's slice fails, the barrier must complete before
       re-raising — the other workers are still touching their shards *)
    (try job 0 with e -> record_failure t e (Printexc.get_raw_backtrace ()));
    Mutex.lock t.mutex;
    while t.remaining > 0 do
      Condition.wait t.work_done t.mutex
    done;
    t.job <- None;
    let failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.mutex;
    match failure with
    | None -> ()
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []
