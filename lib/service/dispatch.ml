type policy = Round_robin | Least_loaded | Sealed_affinity

let policy_name = function
  | Round_robin -> "round-robin"
  | Least_loaded -> "least-loaded"
  | Sealed_affinity -> "sealed-affinity"

let all_policies =
  [
    ("round-robin", Round_robin);
    ("least-loaded", Least_loaded);
    ("sealed-affinity", Sealed_affinity);
  ]

let policy_of_string s =
  match List.assoc_opt (String.lowercase_ascii s) all_policies with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown policy %S (expected %s)" s
           (String.concat ", " (List.map fst all_policies)))

type load = { queued : int; busy : bool; available : bool }

(* FNV-1a, so affinity routing does not depend on OCaml's Hashtbl.hash
   implementation details *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3fffffff)
    s;
  !h

let effective_load l = l.queued + if l.busy then 1 else 0

(* least-loaded among the available platforms; None when every member is
   down or shedding *)
let least_loaded loads =
  let best = ref (-1) in
  Array.iteri
    (fun i l ->
      if
        l.available
        && (!best < 0 || effective_load l < effective_load loads.(!best))
      then best := i)
    loads;
  if !best < 0 then None else Some !best

let affinity_target ~client ~total =
  if total < 1 then invalid_arg "Dispatch.affinity_target: empty fleet";
  fnv1a client mod total

let select ?(gstart = 0) ?gtotal policy ~cursor ~request loads =
  let n = Array.length loads in
  if n = 0 then invalid_arg "Dispatch.select: empty fleet";
  (* [loads] may be one shard's window [gstart, gstart + n) into a
     larger fleet of [gtotal] platforms. Placement that must be stable
     fleet-wide (homes, the affinity hash) is computed over global
     indices and translated; the defaults make a whole-fleet call behave
     exactly as before. The returned index is always local to [loads]. *)
  let gtotal = match gtotal with Some g -> g | None -> gstart + n in
  match request.Request.home with
  | Some h ->
      if h < 0 || h >= gtotal then
        invalid_arg
          (Printf.sprintf "Dispatch.select: home platform %d outside fleet of %d" h
             gtotal);
      let l = h - gstart in
      (* a home is a hard constraint: when it is unavailable the request
         must fail explicitly, never silently reroute — its sealed state
         exists nowhere else. A home outside this shard's window is a
         routing bug upstream; treat it as unavailable here. *)
      if l >= 0 && l < n && loads.(l).available then Some l else None
  | None -> (
      match policy with
      | Round_robin ->
          let rec scan k =
            if k = n then None
            else
              let i = (!cursor + k) mod n in
              if loads.(i).available then begin
                cursor := (i + 1) mod n;
                Some i
              end
              else scan (k + 1)
          in
          scan 0
      | Least_loaded -> least_loaded loads
      | Sealed_affinity -> (
          match request.Request.client with
          | Some c ->
              let l = (fnv1a c mod gtotal) - gstart in
              (* affinity is soft: a down (or off-shard) affinity target
                 falls back to least-loaded (fresh sealed state will grow
                 there) *)
              if l >= 0 && l < n && loads.(l).available then Some l
              else least_loaded loads
          | None -> least_loaded loads))
