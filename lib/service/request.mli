(** One client request against the fleet, and what became of it.

    Times are virtual milliseconds on the fleet's shared timeline. A
    request is *sent* by a client, spends a one-way network transit in
    flight, *arrives* at the dispatcher, waits in a platform queue, runs
    inside a (possibly batched) Flicker session, and its response spends
    another transit on the way back — the recorded latency is the
    client-perceived one, sent to response-received. *)

type tier = Interactive | Batch
(** Admission class. [Interactive] requests are latency-sensitive (tight
    deadlines, served ahead of any queued [Batch] work on the same
    platform); [Batch] is the throughput class every pre-tier caller
    lands in — with a single class in play the scheduling is plain FIFO,
    exactly the pre-tier behavior. *)

val tier_name : tier -> string
val all_tiers : tier list

type t = {
  id : int;
  payload : string;
  client : string option;
      (** client identity, used by the sealed-affinity policy to keep one
          client's sealed state on one machine *)
  home : int option;
      (** hard placement: sealed blobs and replay counters are bound to
          one TPM, so a request touching them can only run there *)
  tier : tier;  (** admission class; dispatch serves [Interactive] first *)
  sent_ms : float;
  arrival_ms : float;  (** [sent_ms] plus the request's network transit *)
  deadline_ms : float option;  (** absolute; enforced at dispatch time *)
  attempts : int;
      (** re-dispatches consumed so far: 0 on first admission, bumped
          each time a platform crash, breaker shed, or failed execution
          sends the request back through the dispatcher. The fleet's
          [retry_budget] bounds it. *)
  forwards : int;
      (** cross-shard hops consumed so far: 0 until the owning shard
          finds no local platform available and hands the request to the
          next shard at an epoch barrier. Bounded by [shards - 1] — a
          request that has visited every shard is rejected, matching the
          single-shard behavior. Never incremented in a 1-shard fleet. *)
}

type completion = {
  output : string;
  platform : int;
  batch : int;  (** how many requests shared the session(s) *)
  dispatched_ms : float;
  finished_ms : float;
  latency_ms : float;  (** client-perceived: sent to response received *)
  missed_deadline : bool;
      (** completed, but after its deadline had passed *)
}

type disposition =
  | Completed of completion
  | Rejected of { at_ms : float; platform : int; queue_depth : int }
      (** admission control: the routed platform's queue was full *)
  | Expired of { at_ms : float }
      (** deadline passed while still queued; never dispatched *)
  | Failed of { at_ms : float; reason : string }

val disposition_name : disposition -> string
val pp_disposition : Format.formatter -> disposition -> unit
