(** Request-to-platform routing policies.

    A request with a [home] platform always routes there regardless of
    policy — sealed blobs and replay counters are bound to one machine's
    TPM (Section 4.3), so running it anywhere else could only fail. The
    policy decides placement for the unconstrained rest:

    - {!Round_robin} rotates blindly: cheapest, but a run of heavy
      requests can pile onto one machine while another idles.
    - {!Least_loaded} picks the shortest queue (idle beats busy on ties,
      then the lowest index), the classic supermarket rule.
    - {!Sealed_affinity} hashes the client identity so that all of one
      client's requests — and therefore any sealed state those sessions
      create — land on the same machine deterministically; anonymous
      requests fall back to least-loaded. *)

type policy = Round_robin | Least_loaded | Sealed_affinity

val policy_name : policy -> string
val policy_of_string : string -> (policy, string) result
val all_policies : (string * policy) list

type load = {
  queued : int;  (** requests waiting in the platform's queue *)
  busy : bool;  (** a batch is currently monopolizing the machine *)
  available : bool;
      (** up and accepting work: [false] while crashed/rebooting or while
          its circuit breaker is shedding load *)
}

val affinity_target : client:string -> total:int -> int
(** The global platform index {!Sealed_affinity} pins [client] to in a
    fleet of [total] platforms — the same FNV-1a hash [select] uses, so
    a sharded fleet can route a request to the shard owning its affinity
    target before shard-local dispatch re-derives it.
    @raise Invalid_argument when [total < 1]. *)

val select :
  ?gstart:int ->
  ?gtotal:int ->
  policy ->
  cursor:int ref ->
  request:Request.t ->
  load array ->
  int option
(** Chosen platform index among the available members; [None] when no
    available platform may take the request. A [home]d request only ever
    returns its home — [None] when the home is down (the caller must fail
    it explicitly rather than reroute, since its sealed state lives
    nowhere else). [cursor] is the round-robin rotation state, advanced
    only when that policy actually picks a platform.

    [loads] may be a shard's contiguous window into a larger fleet:
    [gstart] (default 0) is the global index of [loads.(0)] and [gtotal]
    (default [gstart + length loads]) the fleet-wide platform count.
    Homes and the affinity hash are interpreted as global indices — a
    home or affinity target outside the window behaves as unavailable
    (the shard forwards or falls back) — while the returned index, the
    round-robin rotation, and least-loaded comparisons are local to
    [loads]. With the defaults the behavior over a whole-fleet array is
    unchanged.
    @raise Invalid_argument on an empty [loads] or a [home] outside
    [gtotal]. *)
