(** Request-to-platform routing policies.

    A request with a [home] platform always routes there regardless of
    policy — sealed blobs and replay counters are bound to one machine's
    TPM (Section 4.3), so running it anywhere else could only fail. The
    policy decides placement for the unconstrained rest:

    - {!Round_robin} rotates blindly: cheapest, but a run of heavy
      requests can pile onto one machine while another idles.
    - {!Least_loaded} picks the shortest queue (idle beats busy on ties,
      then the lowest index), the classic supermarket rule.
    - {!Sealed_affinity} hashes the client identity so that all of one
      client's requests — and therefore any sealed state those sessions
      create — land on the same machine deterministically; anonymous
      requests fall back to least-loaded. *)

type policy = Round_robin | Least_loaded | Sealed_affinity

val policy_name : policy -> string
val policy_of_string : string -> (policy, string) result
val all_policies : (string * policy) list

type load = {
  queued : int;  (** requests waiting in the platform's queue *)
  busy : bool;  (** a batch is currently monopolizing the machine *)
  available : bool;
      (** up and accepting work: [false] while crashed/rebooting or while
          its circuit breaker is shedding load *)
}

val select : policy -> cursor:int ref -> request:Request.t -> load array -> int option
(** Chosen platform index among the available members; [None] when no
    available platform may take the request. A [home]d request only ever
    returns its home — [None] when the home is down (the caller must fail
    it explicitly rather than reroute, since its sealed state lives
    nowhere else). [cursor] is the round-robin rotation state, advanced
    only when that policy actually picks a platform.
    @raise Invalid_argument on an empty fleet or a [home] out of range. *)
