(* Array-backed binary min-heap on (time, insertion sequence) so that
   equal timestamps preserve FIFO order: the heap is the only source of
   nondeterminism a discrete-event simulation could have, and this kills
   it. *)

(* [payload] is an option cleared on pop: [pop] shrinks [size] but the
   array keeps references to popped entries (the vacated tail slot, and
   every slot [Array.make] filled with the same dummy), so a plain ['a]
   field would retain each completed event's payload — closures and all —
   for the life of the queue. Clearing the field on the way out leaves
   only a tiny payload-free shell reachable. *)
type 'a entry = { at : float; seq : int; mutable payload : 'a option }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let length t = t.size
let is_empty t = t.size = 0

let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~at_ms payload =
  if Float.is_nan at_ms then invalid_arg "Event_queue.push: NaN timestamp";
  let entry = { at = at_ms; seq = t.next_seq; payload = Some payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.heap then begin
    let capacity = max 16 (2 * t.size) in
    let grown = Array.make capacity entry in
    Array.blit t.heap 0 grown 0 t.size;
    t.heap <- grown
  end;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek_ms t = if t.size = 0 then None else Some t.heap.(0).at

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    match top.payload with
    | None -> assert false (* every live entry holds its payload *)
    | Some payload ->
        top.payload <- None;
        Some (top.at, payload)
  end
