(* Array-backed binary min-heap on (time, insertion sequence) so that
   equal timestamps preserve FIFO order: the heap is the only source of
   nondeterminism a discrete-event simulation could have, and this kills
   it.

   The heap is a structure-of-arrays: a push writes the timestamp, the
   sequence number and the payload into parallel slots instead of
   allocating a per-event entry record, and the timestamps live unboxed
   in a float array. Sift operations swap the three scalar slots.

   [payloads] slots are cleared on pop: [pop] shrinks [size] but the
   arrays keep whatever the vacated slots last held, so a payload left
   in place would be retained — closures and all — for the life of the
   queue. Clearing the slot on the way out leaves nothing reachable. *)

type 'a t = {
  mutable ats : float array;
  mutable seqs : int array;
  mutable payloads : 'a option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  { ats = [||]; seqs = [||]; payloads = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let before t i j =
  t.ats.(i) < t.ats.(j) || (t.ats.(i) = t.ats.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let at = t.ats.(i) in
  t.ats.(i) <- t.ats.(j);
  t.ats.(j) <- at;
  let seq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- seq;
  let payload = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- payload

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t l !smallest then smallest := l;
  if r < t.size && before t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let capacity = max 16 (2 * t.size) in
  let ats = Array.make capacity nan in
  let seqs = Array.make capacity 0 in
  let payloads = Array.make capacity None in
  Array.blit t.ats 0 ats 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.payloads 0 payloads 0 t.size;
  t.ats <- ats;
  t.seqs <- seqs;
  t.payloads <- payloads

let push t ~at_ms payload =
  if Float.is_nan at_ms then invalid_arg "Event_queue.push: NaN timestamp";
  if t.size = Array.length t.ats then grow t;
  let i = t.size in
  t.ats.(i) <- at_ms;
  t.seqs.(i) <- t.next_seq;
  t.payloads.(i) <- Some payload;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t i

let peek_ms t = if t.size = 0 then None else Some t.ats.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let at = t.ats.(0) in
    let payload = t.payloads.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.ats.(0) <- t.ats.(t.size);
      t.seqs.(0) <- t.seqs.(t.size);
      t.payloads.(0) <- t.payloads.(t.size);
      t.payloads.(t.size) <- None;
      sift_down t 0
    end
    else t.payloads.(0) <- None;
    match payload with
    | None -> assert false (* every live slot holds its payload *)
    | Some payload -> Some (at, payload)
  end
