(** A multi-machine Flicker fleet serving PAL requests from many clients.

    The paper's applications are services whose every request monopolizes
    a whole machine for hundreds of milliseconds (a CA signature costs
    ~900 ms, dominated by TPM operations — Section 7). One platform
    therefore saturates at a handful of requests per second, and scale
    has to come from the layer the paper left implicit: a fleet.

    This module is that layer, as a discrete-event simulation on virtual
    time: [N] independent {!Flicker_core.Platform} instances — each with
    its own clock, TPM, and untrusted OS — coordinated by one event loop
    that interleaves client arrivals, network transit, queueing, batched
    session execution, and completions. Each platform's clock is advanced
    to the global virtual time before it runs work, so the [N] timelines
    stay coherent while still only ever moving forward.

    Requests are admitted into bounded per-platform queues (full queue:
    reject — admission control), routed by a pluggable {!Dispatch.policy}
    (with sealed-state homes always honored), optionally carry deadlines
    (enforced at dispatch: an expired request never wastes a session),
    and are served in batches of up to [batch_size] so the per-session
    SKINIT + TPM overhead is amortized. Everything is exported through a
    {!Flicker_obs.Metrics} registry and an exact {!summary}.

    {2 Sharding and domains}

    The fleet scales across cores by splitting its platforms into
    [shards] contiguous windows, each owned by a {!Shard} with its own
    event queue, metrics registry, and round-robin cursor. Shards
    synchronize only at virtual-time {e epoch barriers}: each drains its
    own timeline up to the epoch boundary, then the coordinator replays
    deferred crash hooks in (time, platform) order and delivers
    cross-shard forwarded requests in (emission time, id) order to the
    next shard around the ring, landing exactly at the boundary.

    The shard structure — and therefore the entire simulation — is a
    pure function of the config. [domains] only chooses how many OCaml 5
    [Domain]s execute the fixed set of shards, so the same seed yields
    byte-identical results (dispositions, metrics, summaries) at any
    domain count. With [shards = 1] (the default) the fleet takes the
    original single-timeline path unchanged: no epochs, no forwarding,
    crash hooks inline. *)

type config = {
  platforms : int;
  queue_depth : int;  (** per-platform admission bound *)
  batch_size : int;  (** max requests per dispatched batch *)
  policy : Dispatch.policy;
  seed : string;
  key_bits : int;  (** TPM key hierarchy size for each platform *)
  timing : Flicker_hw.Timing.t;
  faults : Flicker_fault.Injector.config option;
      (** when present, each platform gets a deterministic fault injector
          seeded from [seed]/fault-<i>: TPM errors and latency spikes,
          mid-session crashes, DMA storms, clock skew. Injectors are
          installed after the workload's [prepare], so provisioning work
          is never faulted. *)
  retry_budget : int;
      (** max re-dispatches per request (crash victims, breaker sheds,
          failed executions). 0 — the default — fails them on first
          bounce, the pre-fault behavior. *)
  breaker_failures : int;
      (** consecutive all-failed batches that open a platform's circuit
          breaker; 0 disables the breaker *)
  breaker_cooldown_ms : float;
      (** how long an open breaker sheds load before the member is
          eligible again *)
  shards : int;
      (** how many contiguous platform windows the fleet is split into
          (within [1, platforms]). Determines the simulation: routing at
          submit, epoch barriers, cross-shard forwarding. 1 — the
          default — is the original single-timeline fleet. *)
  domains : int;
      (** how many OCaml 5 domains execute the shards (clamped to
          [shards] at run time). Pure execution placement: any value
          produces byte-identical simulated results. *)
  epoch_ms : float;
      (** virtual-time width of a drain window between barriers in a
          multi-shard fleet: longer epochs mean fewer synchronizations
          but later cross-shard forwarding. Ignored when [shards = 1]. *)
}

val default_config : config
(** 2 platforms, queue depth 32, batch size 4, least-loaded routing,
    seed ["fleet"], 512-bit keys, the paper's Broadcom timing profile; no
    fault injection, no retries, breaker disabled; 1 shard on 1 domain
    (epoch 250 ms). *)

type t

val create : ?config:config -> Workload.t -> t
(** Build the platforms (deterministically from [config.seed], all AIKs
    certified by one fleet privacy CA) and run the workload's [prepare]
    on each. @raise Invalid_argument on a non-positive [platforms],
    [queue_depth], or [batch_size]. *)

val config : t -> config
val workload_name : t -> string
val platform : t -> int -> Flicker_core.Platform.t
val verifier_key : t -> Flicker_crypto.Rsa.public
(** Public key of the fleet's privacy CA, for verifying attestations
    produced on any platform. *)

val now_ms : t -> float
(** Global virtual time: the timestamp of the latest processed event. *)

val past_deadline : deadline_ms:float option -> at_ms:float -> bool
(** The fleet's one deadline-boundary convention, used for both queued
    expiry and completion misses: [true] iff [at_ms] is strictly after
    the deadline — an instant exactly at the deadline is on time. *)

val crash_platform : t -> int -> unit
(** Manually crash platform [i] right now (deterministic counterpart of
    the injector's crash draw): volatile state is lost
    ({!Flicker_core.Platform.power_cycle}), its queued requests are
    re-dispatched to survivors within their [retry_budget] — except
    requests homed to [i], which fail explicitly since their sealed state
    cannot be served elsewhere — and the member rejoins after the
    injector's [reboot_ms] (500 ms without an injector). No-op when
    already down. @raise Invalid_argument on an index outside the
    fleet. *)

val platform_up : t -> int -> bool
(** Whether member [i] is currently available (not crashed/rebooting,
    breaker closed). *)

val submit :
  t ->
  ?client:string ->
  ?home:int ->
  ?tier:Request.tier ->
  ?deadline_ms:float ->
  ?sent_ms:float ->
  string ->
  int
(** Queue a client send of [payload]; returns the request id. The request
    arrives at the dispatcher one network transit after [sent_ms]
    (default: now; a [sent_ms] in the virtual past is clamped to now).
    [deadline_ms] is relative to [sent_ms]. [home] pins the request to
    one platform (sealed-state affinity, all policies honor it);
    [client] feeds the {!Dispatch.Sealed_affinity} hash. [tier]
    (default {!Request.Batch}, the pre-tier behavior) picks the
    admission class: on each platform, queued [Interactive] requests are
    dispatched ahead of any queued [Batch] work.
    @raise Invalid_argument if [home] is outside the fleet. *)

val submit_open_loop :
  t ->
  clients:int ->
  per_client:int ->
  mean_gap_ms:float ->
  ?tier:Request.tier ->
  ?deadline_ms:float ->
  payload:(client:int -> seq:int -> string) ->
  unit ->
  unit
(** Open-loop load: [clients] independent clients each send [per_client]
    requests with exponentially distributed gaps of mean [mean_gap_ms],
    drawn from the fleet's seeded generator (fully deterministic).
    Client [c]'s identity is ["client-c"]. *)

val set_interceptor : t -> (Request.t -> string option) -> unit
(** Install a front end consulted once per admission (first and
    re-dispatch alike), before routing. Returning [Some output]
    completes the request immediately — the client still pays the
    return network transit, the completion records [platform = -1] and
    [batch = 0], and the [fleet.cache_served] counter is bumped —
    without touching any platform queue or session. Returning [None]
    falls through to normal dispatch. The serving tier's result cache
    ({!Flicker_serve}) is the intended interceptor. In a fleet running
    on [domains > 1], the closure is called concurrently from several
    domains and must be safe for that — the serving tier keeps its
    fleets on one shard. *)

val set_admission_gate : t -> (Request.t -> string option) -> unit
(** Install a static-analysis admission gate consulted once per
    {!submit}, before the request enters the network. Returning
    [Some reason] refuses the request outright: it is finalized as
    {!Request.Rejected} (platform [-1]), the [fleet.analysis_rejected]
    counter is bumped, and no arrival event is scheduled. Returning
    [None] admits it normally. {!Flicker_analysis}'s [Admission.install]
    wires a PAL's analysis verdict into this hook. *)

val add_crash_hook : t -> (int -> unit) -> unit
(** Register an observer called with the platform index on every crash
    (injected, drawn, or manual), after the platform's
    {!Flicker_core.Platform.power_cycle} but before its queued victims
    re-enter admission — so a result cache can invalidate the crashed
    platform's entries ahead of any re-dispatch. Hooks run in
    registration order. In a multi-shard fleet, hooks are deferred to
    the next epoch barrier and replayed from one domain in (crash time,
    platform) order — after the victims' re-dispatch within their own
    shard, but before any cross-shard delivery. *)

val run : ?until_ms:float -> t -> unit
(** Drive the event loop until every queue is drained (or past
    [until_ms]). Re-entrant: more work can be submitted and run again,
    virtual time keeps accumulating. A multi-shard fleet runs the epoch
    loop on up to [config.domains] domains (spun up per call, joined
    before returning); a single-shard fleet drains its one timeline on
    the calling domain. *)

val dispositions : t -> (Request.t * Request.disposition) list
(** Every finalized request, in id order. Requests still queued or in
    flight (after a bounded [run ~until_ms]) are absent. *)

val disposition_of : t -> int -> Request.disposition option
val metrics : t -> Flicker_obs.Metrics.t
(** Snapshot of the fleet-level series merged with every shard's
    registry, in shard order: [fleet.admitted], [fleet.rejected],
    [fleet.expired], [fleet.completed], [fleet.failed],
    [fleet.deadline_misses], [fleet.batches], [fleet.forwarded] counters;
    [fleet.latency_ms], [fleet.service_ms], [fleet.batch_fill],
    [fleet.queue_depth] histograms. The merge is order-independent
    ({!Flicker_obs.Metrics.merge_into}), so the snapshot does not depend
    on the domain count. Per-machine series (TPM commands, sessions,
    busy retries) live on each platform's own registry. *)

type tier_summary = {
  tier : Request.tier;
  t_submitted : int;
  t_completed : int;
  t_rejected : int;
  t_expired : int;
  t_failed : int;
  t_deadline_misses : int;
  t_p50_ms : float;
  t_p95_ms : float;
}
(** Per-admission-class slice of the summary. Only finalized requests
    are counted (like the global summary), and percentiles are over that
    tier's completions alone. *)

type summary = {
  submitted : int;
  completed : int;
  rejected : int;
  expired : int;
  failed : int;
  deadline_misses : int;  (** completed, but late *)
  makespan_ms : float;  (** first send to last completion *)
  throughput_rps : float;  (** completed per wall second of makespan *)
  latency_mean_ms : float;
  latency_p50_ms : float;
  latency_p95_ms : float;
  latency_max_ms : float;
  sessions : int;  (** Flicker sessions actually run, fleet-wide *)
  busy_retries : int;
  per_platform : int array;  (** requests completed by each platform *)
  crashes : int;  (** injected + manual platform crashes *)
  redispatched : int;  (** requests re-admitted after a bounce *)
  forwarded : int;
      (** cross-shard hops: requests a shard could not place locally and
          handed to the next shard at an epoch barrier (always 0 with
          one shard) *)
  breaker_opens : int;
  tpm_faults : int;  (** injected TPM transient errors + latency spikes *)
  dma_storms : int;  (** injected DMA storm bursts *)
  cache_served : int;
      (** completions answered by the interceptor (result cache) without
          a platform session *)
  analysis_rejected : int;
      (** submissions refused by the static-analysis admission gate
          (counted inside [rejected] as well) *)
  by_tier : tier_summary list;  (** in {!Request.all_tiers} order *)
}

val percentile : float array -> float -> float
(** Nearest-rank percentile over an already-sorted array — the estimator
    [summary] uses for p50/p95. Total: 0.0 on an empty array (a run
    where every request was rejected or crashed has no latencies), the
    sole element for every [p] on a singleton, and the rank clamped into
    the array for degenerate [p]. Exposed for the regression tests. *)

val summary : t -> summary
(** Exact (not bucketed) percentiles over the completed requests'
    client-perceived latencies. *)

val pp_summary : Format.formatter -> summary -> unit
