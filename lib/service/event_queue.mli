(** Deterministic min-priority queue of timestamped events.

    The fleet coordinator's core data structure: client arrivals, platform
    wake-ups, and retry timers all go through one of these, keyed by
    virtual time in milliseconds. Events with equal timestamps pop in
    insertion order, so a simulation driven from a fixed seed replays the
    exact same schedule — the property the determinism tests pin down. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> at_ms:float -> 'a -> unit
(** @raise Invalid_argument if [at_ms] is NaN. *)

val pop : 'a t -> (float * 'a) option
(** Earliest event, FIFO among equals; [None] when empty. *)

val peek_ms : 'a t -> float option
(** Timestamp of the next event without removing it. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
