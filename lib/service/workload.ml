module Platform = Flicker_core.Platform
module Session = Flicker_core.Session
module Attestation = Flicker_core.Attestation
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Layout = Flicker_slb.Layout
module Util = Flicker_crypto.Util
module Rsa = Flicker_crypto.Rsa
module CA = Flicker_apps.Cert_authority

type t = {
  name : string;
  prepare : Platform.t -> int -> unit;
  run_batch : Platform.t -> Request.t list -> (string, string) result list;
}

(* --- echo ------------------------------------------------------------ *)

(* one registered PAL; the per-request work is input data, not code *)
let echo_pal =
  lazy
    (Pal.define ~name:"fleet-echo" (fun env ->
         match Util.decode_fields env.Pal_env.inputs with
         | Ok (work :: items) when items <> [] ->
             (match float_of_string_opt work with
             | Some ms when ms > 0.0 ->
                 Pal_env.compute env ~ms:(ms *. float_of_int (List.length items))
             | _ -> ());
             Pal_env.set_output env
               (Util.encode_fields (List.map (fun s -> "echo:" ^ s) items))
         | Ok _ | Error _ -> Pal_env.set_output env "ERROR: malformed echo batch"))

(* split [requests] greedily so each chunk's encoded inputs and outputs
   fit their 4 KB pages *)
let echo_chunks requests =
  let page = Layout.io_page_size in
  let base = 4 + String.length (Printf.sprintf "%.3f" 1.0) + 16 in
  let cost r = 4 + String.length r.Request.payload + 9 (* "echo:" + framing *) in
  let rec take used acc = function
    | [] -> (List.rev acc, [])
    | r :: rest ->
        let c = cost r in
        if acc <> [] && used + c > page then (List.rev acc, r :: rest)
        else take (used + c) (r :: acc) rest
  in
  let rec split = function
    | [] -> []
    | rs ->
        let chunk, rest = take base [] rs in
        chunk :: split rest
  in
  split requests

let echo ?(work_ms = 1.0) () =
  let pal = Lazy.force echo_pal in
  let run_chunk platform requests =
    let inputs =
      Util.encode_fields
        (Printf.sprintf "%.3f" work_ms
        :: List.map (fun r -> r.Request.payload) requests)
    in
    if String.length inputs > Layout.io_page_size then
      List.map (fun _ -> Error "payload exceeds the 4 KB input page") requests
    else
      match
        Session.retry_busy platform (fun () -> Session.execute platform ~pal ~inputs ())
      with
      | Error e ->
          let msg = Format.asprintf "%a" Session.pp_error e in
          List.map (fun _ -> Error msg) requests
      | Ok outcome -> (
          match Util.decode_fields outcome.Session.outputs with
          | Ok outs when List.length outs = List.length requests ->
              List.map (fun o -> Ok o) outs
          | Ok _ | Error _ -> List.map (fun _ -> Error "malformed echo output") requests)
  in
  {
    name = "echo";
    prepare = (fun _ _ -> ());
    run_batch =
      (fun platform requests ->
        List.concat_map (run_chunk platform) (echo_chunks requests));
  }

(* --- certificate authority ------------------------------------------- *)

let ca_csr_payload ~subject ~subject_key =
  Util.encode_fields [ "csr"; subject; Rsa.public_to_string subject_key ]

let decode_csr payload =
  match Util.decode_fields payload with
  | Ok [ "csr"; subject; key_raw ] -> (
      match Rsa.public_of_string key_raw with
      | key -> Ok { CA.subject; subject_key = key }
      | exception Invalid_argument m -> Error ("subject key: " ^ m))
  | Ok _ -> Error "malformed CSR payload"
  | Error e -> Error ("malformed CSR payload: " ^ e)

let decode_ca_output out =
  match Util.decode_fields out with
  | Ok [ "cert"; cert_raw; ca_pub_raw ] -> (
      match CA.decode_certificate cert_raw with
      | Error m -> Error m
      | Ok cert -> (
          match Rsa.public_of_string ca_pub_raw with
          | ca_pub -> Ok (cert, ca_pub)
          | exception Invalid_argument m -> Error ("issuer key: " ^ m)))
  | Ok _ | Error _ -> Error "malformed CA output"

let ca ?(key_bits = 512) ?(issuer = "Flicker Fleet CA") ?(attest_batches = false)
    policy =
  (* per-platform CA replicas, found by physical platform identity *)
  let servers : (Platform.t * CA.server) list ref = ref [] in
  let server_for platform =
    match List.find_opt (fun (p, _) -> p == platform) !servers with
    | Some (_, s) -> s
    | None -> failwith "Workload.ca: platform was never prepared"
  in
  let prepare platform index =
    let server =
      CA.create platform ~key_bits
        ~issuer:(Printf.sprintf "%s #%d" issuer index)
        policy
    in
    (match CA.init_ca server with
    | Ok _ -> ()
    | Error e ->
        failwith (Printf.sprintf "Workload.ca: init_ca on platform %d: %s" index e));
    servers := (platform, server) :: !servers
  in
  let run_batch platform requests =
    let server = server_for platform in
    let pub_raw =
      match CA.public_key server with
      | Some pub -> Rsa.public_to_string pub
      | None -> ""
    in
    (* invalid payloads fail without contaminating the signable rest *)
    let decoded = List.map (fun r -> decode_csr r.Request.payload) requests in
    let csrs = List.filter_map Result.to_option decoded in
    let signed = ref (CA.sign_batch server csrs) in
    let results =
      List.map
        (fun d ->
          match d with
          | Error m -> Error m
          | Ok _ -> (
              match !signed with
              | [] -> Error "batch result arity mismatch"
              | r :: rest ->
                  signed := rest;
                  (match r with
                  | Ok cert ->
                      Ok
                        (Util.encode_fields
                           [ "cert"; CA.encode_certificate cert; pub_raw ])
                  | Error m -> Error m)))
        decoded
    in
    if attest_batches && csrs <> [] then
      (* one quote vouches for the whole batch's sessions *)
      ignore
        (Attestation.generate platform ~nonce:(Platform.fresh_nonce platform)
           ~inputs:"" ~outputs:"");
    results
  in
  { name = "certificate-authority"; prepare; run_batch }
