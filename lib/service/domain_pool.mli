(** A reusable fork-join pool of OCaml 5 Domains.

    [create n] parks [n - 1] worker domains; the calling domain is
    worker 0, so [create 1] spawns nothing and [run] degenerates to a
    plain call — the single-domain fleet pays no synchronization at all.
    [run pool f] invokes [f w] once per worker [w] in [0 .. n - 1],
    concurrently, and returns only when all have finished (a full
    barrier). The first exception any worker raises is captured and
    re-raised at the caller after the barrier completes, so no worker is
    ever abandoned mid-slice. *)

type t

val create : int -> t
(** @raise Invalid_argument when [size < 1]. *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** Fork-join one job across every worker. Not reentrant: one [run] at
    a time per pool. *)

val shutdown : t -> unit
(** Stop and join the worker domains. The pool is unusable afterwards.
    Idempotent. *)
