(** What the fleet actually runs when a batch of requests reaches a
    platform.

    A workload owns the PAL(s) involved and any per-platform server state
    (a CA's sealed key, for instance). [prepare] runs once per platform
    when the fleet is built; [run_batch] turns a batch of requests into
    positional per-request results, paying the per-session overhead
    (SKINIT, TPM commands, OS suspension) as few times as it can manage.
    Implementations are expected to ride out transient [Os_busy] with
    {!Flicker_core.Session.retry_busy}. *)

type t = {
  name : string;
  prepare : Flicker_core.Platform.t -> int -> unit;
      (** called once per platform at fleet construction with the
          platform and its fleet index *)
  run_batch :
    Flicker_core.Platform.t ->
    Request.t list ->
    (string, string) result list;
      (** must return exactly one result per request, in order *)
}

val echo : ?work_ms:float -> unit -> t
(** A minimal PAL that charges [work_ms] (default 1 ms) of simulated
    compute per request and echoes each payload back, the whole batch in
    one Flicker session. The fleet tests' and microbenchmarks' workhorse:
    its cost model is transparent, so queueing and batching effects can
    be predicted exactly. *)

val ca :
  ?key_bits:int ->
  ?issuer:string ->
  ?attest_batches:bool ->
  Flicker_apps.Cert_authority.policy ->
  t
(** The paper's certificate authority (Section 6.3.2) as a fleet
    workload: each platform runs a CA replica whose signing key is
    generated inside a Flicker session on that machine and sealed to its
    TPM. Request payloads are {!ca_csr_payload}-encoded CSRs; a batch is
    signed by {!Flicker_apps.Cert_authority.sign_batch}, so the dominant
    ~898 ms unseal is paid once per session instead of once per CSR.
    With [attest_batches] (default [false]) each batch additionally
    produces one TPM quote — one attestation covering the whole batch
    instead of one per certificate. [key_bits] defaults to 512 (tests and
    benches; the simulated latencies follow the calibrated model either
    way). *)

val ca_csr_payload :
  subject:string -> subject_key:Flicker_crypto.Rsa.public -> string
(** Encode a CSR as a fleet request payload. *)

val decode_ca_output :
  string ->
  ( Flicker_apps.Cert_authority.certificate * Flicker_crypto.Rsa.public,
    string )
  result
(** Decode a completed CA request's output back into the certificate and
    the issuing replica's public key (each platform's replica has its
    own TPM-sealed key), ready for
    {!Flicker_apps.Cert_authority.verify_certificate}. *)
