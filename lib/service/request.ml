type tier = Interactive | Batch

let tier_name = function Interactive -> "interactive" | Batch -> "batch"
let all_tiers = [ Interactive; Batch ]

type t = {
  id : int;
  payload : string;
  client : string option;
  home : int option;
  tier : tier;
  sent_ms : float;
  arrival_ms : float;
  deadline_ms : float option;
  attempts : int;
  forwards : int;
}

type completion = {
  output : string;
  platform : int;
  batch : int;
  dispatched_ms : float;
  finished_ms : float;
  latency_ms : float;
  missed_deadline : bool;
}

type disposition =
  | Completed of completion
  | Rejected of { at_ms : float; platform : int; queue_depth : int }
  | Expired of { at_ms : float }
  | Failed of { at_ms : float; reason : string }

let disposition_name = function
  | Completed _ -> "completed"
  | Rejected _ -> "rejected"
  | Expired _ -> "expired"
  | Failed _ -> "failed"

let pp_disposition fmt = function
  | Completed c ->
      Format.fprintf fmt "completed on platform %d at %.1f ms (%.1f ms latency%s)"
        c.platform c.finished_ms c.latency_ms
        (if c.missed_deadline then ", past deadline" else "")
  | Rejected r ->
      Format.fprintf fmt "rejected at %.1f ms (platform %d queue full at %d)"
        r.at_ms r.platform r.queue_depth
  | Expired e -> Format.fprintf fmt "expired in queue at %.1f ms" e.at_ms
  | Failed f -> Format.fprintf fmt "failed at %.1f ms: %s" f.at_ms f.reason
