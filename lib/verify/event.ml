module Tracer = Flicker_obs.Tracer

type pcr_kind =
  | Measure
  | Stub
  | Input
  | Output
  | Nonce
  | Cap
  | Software
  | Other of string

let pcr_kind_of_string = function
  | "measure" -> Measure
  | "stub" -> Stub
  | "input" -> Input
  | "output" -> Output
  | "nonce" -> Nonce
  | "cap" -> Cap
  | "software" -> Software
  | s -> Other s

let pcr_kind_to_string = function
  | Measure -> "measure"
  | Stub -> "stub"
  | Input -> "input"
  | Output -> "output"
  | Nonce -> "nonce"
  | Cap -> "cap"
  | Software -> "software"
  | Other s -> s

type t =
  | Session_begin of string
  | Session_end
  | Os_suspend
  | Os_resume
  | Skinit_begin of string
  | Skinit_end
  | Dev_protect of { addr : int; len : int }
  | Dev_unprotect of { addr : int; len : int }
  | Dev_clear
  | Pcr_reset
  | Pcr_reboot
  | Pcr_extend of { index : int; kind : pcr_kind }
  | Nv_read of { index : int }
  | Nv_write of { index : int; counter : int option }
  | Counter_increment of { handle : int; value : int }
  | Zeroize of { addr : int; len : int }
  | Dma_attempt of { addr : int; len : int; write : bool; denied : bool }
  | Replay_record of { counter : int }
  | Replay_inject of { counter : int }
  | Os_inject of { what : string }

let to_string = function
  | Session_begin pal -> Printf.sprintf "session.begin(%s)" pal
  | Session_end -> "session.end"
  | Os_suspend -> "os.suspend"
  | Os_resume -> "os.resume"
  | Skinit_begin tech -> Printf.sprintf "skinit.begin(%s)" tech
  | Skinit_end -> "skinit.end"
  | Dev_protect { addr; len } -> Printf.sprintf "dev.protect(0x%x,+%d)" addr len
  | Dev_unprotect { addr; len } ->
      Printf.sprintf "dev.unprotect(0x%x,+%d)" addr len
  | Dev_clear -> "dev.clear"
  | Pcr_reset -> "pcr.reset"
  | Pcr_reboot -> "pcr.reboot"
  | Pcr_extend { index; kind } ->
      Printf.sprintf "pcr.extend(%d,%s)" index (pcr_kind_to_string kind)
  | Nv_read { index } -> Printf.sprintf "nv.read(0x%x)" index
  | Nv_write { index; counter = Some c } ->
      Printf.sprintf "nv.write(0x%x,counter=%d)" index c
  | Nv_write { index; counter = None } -> Printf.sprintf "nv.write(0x%x)" index
  | Counter_increment { handle; value } ->
      Printf.sprintf "counter.increment(%d,=%d)" handle value
  | Zeroize { addr; len } -> Printf.sprintf "zeroize(0x%x,+%d)" addr len
  | Dma_attempt { addr; len; write; denied } ->
      Printf.sprintf "dma.attempt(0x%x,+%d,%s,%s)" addr len
        (if write then "write" else "read")
        (if denied then "denied" else "ALLOWED")
  | Replay_record { counter } -> Printf.sprintf "replay.record(counter=%d)" counter
  | Replay_inject { counter } -> Printf.sprintf "replay.inject(counter=%d)" counter
  | Os_inject { what } -> Printf.sprintf "os.inject(%s)" what

let arg name args = List.assoc_opt name args

let count name args =
  match arg name args with Some (Tracer.Count n) -> Some n | _ -> None

let str name args =
  match arg name args with Some (Tracer.Str s) -> Some s | _ -> None

let flag name args =
  match arg name args with Some (Tracer.Flag b) -> Some b | _ -> None

let ( let* ) = Option.bind

let of_tracer_event (e : Tracer.event) =
  if e.Tracer.cat <> "protocol" then None
  else
    let args = e.Tracer.args in
    match e.Tracer.name with
    | "session.begin" ->
        let pal = Option.value ~default:"?" (str "pal" args) in
        Some (Session_begin pal)
    | "session.end" -> Some Session_end
    | "os.suspend" -> Some Os_suspend
    | "os.resume" -> Some Os_resume
    | "skinit.begin" ->
        let tech = Option.value ~default:"?" (str "tech" args) in
        Some (Skinit_begin tech)
    | "skinit.end" -> Some Skinit_end
    | "dev.protect" ->
        let* addr = count "addr" args in
        let* len = count "len" args in
        Some (Dev_protect { addr; len })
    | "dev.unprotect" ->
        let* addr = count "addr" args in
        let* len = count "len" args in
        Some (Dev_unprotect { addr; len })
    | "dev.clear" -> Some Dev_clear
    | "pcr.reset" -> Some Pcr_reset
    | "pcr.reboot" -> Some Pcr_reboot
    | "pcr.extend" ->
        let* index = count "index" args in
        let kind =
          pcr_kind_of_string (Option.value ~default:"software" (str "kind" args))
        in
        Some (Pcr_extend { index; kind })
    | "nv.read" ->
        let* index = count "index" args in
        Some (Nv_read { index })
    | "nv.write" ->
        let* index = count "index" args in
        Some (Nv_write { index; counter = count "counter" args })
    | "counter.increment" ->
        let* handle = count "handle" args in
        let* value = count "value" args in
        Some (Counter_increment { handle; value })
    | "zeroize" ->
        let* addr = count "addr" args in
        let* len = count "len" args in
        Some (Zeroize { addr; len })
    | "dma.attempt" ->
        let* addr = count "addr" args in
        let* len = count "len" args in
        let write = Option.value ~default:false (flag "write" args) in
        let denied = Option.value ~default:false (flag "denied" args) in
        Some (Dma_attempt { addr; len; write; denied })
    | "replay.record" ->
        let* counter = count "counter" args in
        Some (Replay_record { counter })
    | "replay.inject" ->
        let* counter = count "counter" args in
        Some (Replay_inject { counter })
    | "os.inject" ->
        let what = Option.value ~default:"?" (str "what" args) in
        Some (Os_inject { what })
    | _ -> None

let of_trace events = List.filter_map of_tracer_event events
