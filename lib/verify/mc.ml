type step = { action : string; events : Event.t list }

type counterexample = {
  steps : step list;
  automaton : string;
  property : string;
  paper : string;
  event : Event.t;
  message : string;
}

type stats = {
  states : int;
  transitions : int;
  depth : int;
  truncated : bool;
  peak_queue : int;
  ample : int;
  por : bool;
}

type outcome = Verified | Violation of counterexample
type result = { outcome : outcome; stats : stats }

(* One frontier node: model state, monitor instances, and the reversed
   path that reached it (paths are bounded by max_depth, so storing them
   per node is cheap and spares parent-pointer reconstruction). *)
type node = {
  mstate : Model.state;
  monitors : (Automata.t * Automata.instance) list;
  rev_path : step list;
  node_depth : int;
}

let key node =
  String.concat ";"
    (Model.encode node.mstate
    :: List.map (fun (_, i) -> Automata.encode_state i) node.monitors)

(* Feed a transition's events through every monitor. First rejection
   wins; the remaining monitors are not consulted for later events. *)
let feed_monitors monitors events =
  let rec go monitors = function
    | [] -> Ok monitors
    | ev :: rest -> (
        let violation = ref None in
        let monitors' =
          List.map
            (fun (a, inst) ->
              match !violation with
              | Some _ -> (a, inst)
              | None -> (
                  match Automata.feed inst ev with
                  | Ok inst' -> (a, inst')
                  | Error message ->
                      violation := Some (a, ev, message);
                      (a, inst)))
            monitors
        in
        match !violation with
        | Some (a, ev, message) -> Error (a, ev, message)
        | None -> go monitors' rest)
  in
  go monitors events

(* Ample-set selection (persistent sets over the session/adversary
   product). The session program is deterministic, so a state has at
   most one session transition [t]. Exploring only [t] is sound when
   every enabled adversary action is (a) invisible to every automaton
   in every state and (b) footprint-independent of [t]: each postponed
   action stays enabled across [t] (independence covers its enabling
   condition), fires in a successor with identical events (independence
   covers its payload reads), and the monitor product agrees in both
   orders, so the reduced graph reaches the same verdicts with the same
   minimal counterexample lengths. Postponing is re-decided at every
   state, so an action is explored no later than the first block whose
   footprint it touches; actions postponed all the way past the final
   block are no-ops for safety (invisible, and nothing remains to
   observe their machine effect). Actions that only become enabled
   later — an inject after a pending record — are handled inductively
   where they first appear. The state graph is a DAG (pc strictly
   advances, budgets strictly decrease), so the classic action-ignoring
   cycle problem cannot arise.

   Visibility is judged two ways. [Model.fp_visible] is universal: the
   event is ignored by every automaton in every monitor state, so it
   may be postponed anywhere. On top of that, an action that is silent
   in the state's *current* monitor product (every instance accepts
   unchanged) may also be postponed, because for every adversary event
   this applies to — an un-denied DMA probe outside a live launch —
   the only way a monitor becomes reactive to it again is a transition
   (SKINIT arming the DEV window) that already conflicts with the
   action's footprint, so the silence is stable across everything the
   action can be postponed over. The POR-vs-full QCheck property is
   the regression net for this argument. *)
let monitor_silent monitors events =
  match feed_monitors monitors events with
  | Error _ -> false
  | Ok monitors' ->
      List.for_all2
        (fun (_, a) (_, b) ->
          Automata.encode_state a = Automata.encode_state b)
        monitors monitors'

let ample ~por trans monitors =
  if not por then trans
  else
    match List.partition (fun t -> t.Model.source = Model.Session) trans with
    | ([ session ] as only), (_ :: _ as adversary)
      when List.for_all
             (fun (a : Model.trans) ->
               ((not (Model.fp_visible a.Model.fp))
               || monitor_silent monitors a.Model.events)
               && Model.independent session.Model.fp a.Model.fp)
             adversary ->
        only
    | _ -> trans

let run ?(automata = Automata.all) ?(max_states = 50_000) ?(max_depth = 96)
    ?dma_probes ?adversary ?sessions ?(por = true) variant =
  let visited = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let enqueue node =
    (* dedup at enqueue time: the visited set doubles as a membership
       check for the queue, so a state reachable along many commuting
       interleavings is queued (and counted) exactly once *)
    let k = key node in
    if not (Hashtbl.mem visited k) then begin
      Hashtbl.replace visited k ();
      Queue.add node queue
    end
  in
  enqueue
    {
      mstate = Model.initial ?adversary ?sessions ?dma_probes variant;
      monitors = List.map (fun a -> (a, Automata.start a)) automata;
      rev_path = [];
      node_depth = 0;
    };
  let states = ref 0 in
  let transitions = ref 0 in
  let depth = ref 0 in
  let truncated = ref false in
  let peak_queue = ref 1 in
  let ample_states = ref 0 in
  let found = ref None in
  (try
     while not (Queue.is_empty queue) do
       let node = Queue.pop queue in
       if !states >= max_states then begin
         truncated := true;
         raise Exit
       end;
       incr states;
       if node.node_depth > !depth then depth := node.node_depth;
       let succs = Model.transitions node.mstate in
       if node.node_depth >= max_depth then begin
         (* only report truncation when the depth cap actually cut
            something off: a leaf at exactly max_depth is fully explored *)
         if succs <> [] then truncated := true
       end
       else begin
         let chosen = ample ~por succs node.monitors in
         if chosen != succs && List.compare_lengths chosen succs < 0 then
           incr ample_states;
         List.iter
           (fun (t : Model.trans) ->
             incr transitions;
             let step = { action = t.Model.label; events = t.Model.events } in
             match feed_monitors node.monitors t.Model.events with
             | Error (a, ev, message) ->
                 found :=
                   Some
                     {
                       steps = List.rev (step :: node.rev_path);
                       automaton = Automata.name a;
                       property = Automata.property a;
                       paper = Automata.paper a;
                       event = ev;
                       message;
                     };
                 raise Exit
             | Ok monitors' ->
                 enqueue
                   {
                     mstate = t.Model.succ;
                     monitors = monitors';
                     rev_path = step :: node.rev_path;
                     node_depth = node.node_depth + 1;
                   })
           chosen;
         let qlen = Queue.length queue in
         if qlen > !peak_queue then peak_queue := qlen
       end
     done
   with Exit -> ());
  let stats =
    {
      states = !states;
      transitions = !transitions;
      depth = !depth;
      truncated = !truncated;
      peak_queue = !peak_queue;
      ample = !ample_states;
      por;
    }
  in
  match !found with
  | Some cex -> { outcome = Violation cex; stats }
  | None -> { outcome = Verified; stats }

let pp_counterexample fmt cex =
  Format.fprintf fmt "@[<v>violates %s (paper %s): %s@,property: %s@,trace:@,"
    cex.automaton cex.paper cex.message cex.property;
  List.iteri
    (fun i step ->
      Format.fprintf fmt "  %2d. %-18s %s@," (i + 1) step.action
        (String.concat ", " (List.map Event.to_string step.events)))
    cex.steps;
  Format.fprintf fmt "  !!  %s@]" (Event.to_string cex.event)
