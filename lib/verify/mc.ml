type step = { action : string; events : Event.t list }

type counterexample = {
  steps : step list;
  automaton : string;
  property : string;
  paper : string;
  event : Event.t;
  message : string;
}

type stats = { states : int; transitions : int; depth : int; truncated : bool }
type outcome = Verified | Violation of counterexample
type result = { outcome : outcome; stats : stats }

(* One frontier node: model state, monitor instances, and the reversed
   path that reached it (paths are bounded by max_depth, so storing them
   per node is cheap and spares parent-pointer reconstruction). *)
type node = {
  mstate : Model.state;
  monitors : (Automata.t * Automata.instance) list;
  rev_path : step list;
  node_depth : int;
}

let key node =
  String.concat ";"
    (Model.encode node.mstate
    :: List.map (fun (_, i) -> Automata.encode_state i) node.monitors)

(* Feed a transition's events through every monitor. First rejection
   wins; the remaining monitors are not consulted for later events. *)
let feed_monitors monitors events =
  let rec go monitors = function
    | [] -> Ok monitors
    | ev :: rest -> (
        let violation = ref None in
        let monitors' =
          List.map
            (fun (a, inst) ->
              match !violation with
              | Some _ -> (a, inst)
              | None -> (
                  match Automata.feed inst ev with
                  | Ok inst' -> (a, inst')
                  | Error message ->
                      violation := Some (a, ev, message);
                      (a, inst)))
            monitors
        in
        match !violation with
        | Some (a, ev, message) -> Error (a, ev, message)
        | None -> go monitors' rest)
  in
  go monitors events

let run ?(automata = Automata.all) ?(max_states = 20_000) ?(max_depth = 64)
    ?dma_probes variant =
  let visited = Hashtbl.create 1024 in
  let queue = Queue.create () in
  Queue.add
    {
      mstate = Model.initial ?dma_probes variant;
      monitors = List.map (fun a -> (a, Automata.start a)) automata;
      rev_path = [];
      node_depth = 0;
    }
    queue;
  let states = ref 0 in
  let transitions = ref 0 in
  let depth = ref 0 in
  let truncated = ref false in
  let found = ref None in
  (try
     while not (Queue.is_empty queue) do
       let node = Queue.pop queue in
       let k = key node in
       if not (Hashtbl.mem visited k) then begin
         Hashtbl.replace visited k ();
         if !states >= max_states then begin
           truncated := true;
           raise Exit
         end;
         incr states;
         if node.node_depth > !depth then depth := node.node_depth;
         if node.node_depth >= max_depth then truncated := true
         else
           List.iter
             (fun (action, events, mstate') ->
               incr transitions;
               let step = { action; events } in
               match feed_monitors node.monitors events with
               | Error (a, ev, message) ->
                   found :=
                     Some
                       {
                         steps = List.rev (step :: node.rev_path);
                         automaton = Automata.name a;
                         property = Automata.property a;
                         paper = Automata.paper a;
                         event = ev;
                         message;
                       };
                   raise Exit
               | Ok monitors' ->
                   Queue.add
                     {
                       mstate = mstate';
                       monitors = monitors';
                       rev_path = step :: node.rev_path;
                       node_depth = node.node_depth + 1;
                     }
                     queue)
             (Model.transitions node.mstate)
       end
     done
   with Exit -> ());
  let stats =
    {
      states = !states;
      transitions = !transitions;
      depth = !depth;
      truncated = !truncated;
    }
  in
  match !found with
  | Some cex -> { outcome = Violation cex; stats }
  | None -> { outcome = Verified; stats }

let pp_counterexample fmt cex =
  Format.fprintf fmt "@[<v>violates %s (paper %s): %s@,property: %s@,trace:@,"
    cex.automaton cex.paper cex.message cex.property;
  List.iteri
    (fun i step ->
      Format.fprintf fmt "  %2d. %-18s %s@," (i + 1) step.action
        (String.concat ", " (List.map Event.to_string step.events)))
    cex.steps;
  Format.fprintf fmt "  !!  %s@]" (Event.to_string cex.event)
