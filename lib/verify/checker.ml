type violation = {
  automaton : string;
  property : string;
  paper : string;
  event_index : int;
  event : Event.t;
  message : string;
  window : Event.t list;
}

type report = { events_checked : int; violations : violation list }

let window_size = 8

let check ?(automata = Automata.all) events =
  let instances = ref (List.map (fun a -> (a, Automata.start a)) automata) in
  let violations = ref [] in
  let recent = ref [] (* last [window_size] events, newest first *) in
  List.iteri
    (fun i ev ->
      recent := ev :: (if List.length !recent >= window_size then
                         List.filteri (fun j _ -> j < window_size - 1) !recent
                       else !recent);
      instances :=
        List.map
          (fun (a, inst) ->
            match Automata.feed inst ev with
            | Ok inst' -> (a, inst')
            | Error message ->
                violations :=
                  {
                    automaton = Automata.name a;
                    property = Automata.property a;
                    paper = Automata.paper a;
                    event_index = i;
                    event = ev;
                    message;
                    window = List.rev !recent;
                  }
                  :: !violations;
                (* restart so later sessions in the trace are still checked *)
                (a, Automata.start a))
          !instances)
    events;
  { events_checked = List.length events; violations = List.rev !violations }

let check_trace ?automata events = check ?automata (Event.of_trace events)

let check_tracer ?automata tracer =
  check_trace ?automata (Flicker_obs.Tracer.events tracer)

let pp_violation fmt v =
  Format.fprintf fmt "[%s] %s (paper %s)@,  at event %d: %s@,  %s" v.automaton
    v.message v.paper v.event_index (Event.to_string v.event) v.property

let violation_to_string v =
  Printf.sprintf "[%s] %s (paper %s) at event %d: %s" v.automaton v.message
    v.paper v.event_index (Event.to_string v.event)
