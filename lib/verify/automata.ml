type 's spec = {
  spec_name : string;
  spec_property : string;
  spec_paper : string;
  init : 's;
  step : 's -> Event.t -> ('s, string) result;
  encode : 's -> string;
}

type t = Auto : 's spec -> t
type instance = Inst : { spec : 's spec; state : 's } -> instance

let name (Auto s) = s.spec_name
let property (Auto s) = s.spec_property
let paper (Auto s) = s.spec_paper
let start (Auto s) = Inst { spec = s; state = s.init }
let instance_name (Inst i) = i.spec.spec_name

let feed (Inst i) ev =
  match i.spec.step i.state ev with
  | Ok state -> Ok (Inst { i with state })
  | Error _ as e -> e

let encode_state (Inst i) = i.spec.encode i.state

(* [a1, a1+l1) and [a2, a2+l2) share at least one byte *)
let overlaps a1 l1 a2 l2 = l1 > 0 && l2 > 0 && a1 < a2 + l2 && a2 < a1 + l1
let covers ~outer:(a1, l1) ~inner:(a2, l2) = a1 <= a2 && a2 + l2 <= a1 + l1

(* --- cap-before-resume ------------------------------------------------ *)

type cap_state = C_idle | C_armed | C_capped

let cap_before_resume =
  Auto
    {
      spec_name = "cap-before-resume";
      spec_property =
        "PCR 17 is extended with the session cap value before the OS resumes";
      spec_paper = "§4.3";
      init = C_idle;
      encode =
        (function C_idle -> "i" | C_armed -> "a" | C_capped -> "c");
      step =
        (fun st ev ->
          match (st, ev) with
          | _, Event.Skinit_begin _ -> Ok C_armed
          | C_armed, Event.Pcr_extend { index = 17; kind = Event.Cap } ->
              Ok C_capped
          | C_armed, Event.Os_resume ->
              Error "OS resumed after a late launch before PCR 17 was capped"
          | C_capped, Event.Os_resume -> Ok C_idle
          | _, Event.Pcr_reboot -> Ok C_idle
          | st, _ -> Ok st);
    }

(* --- dev-covers-slb --------------------------------------------------- *)

type dev_state =
  | D_idle
  | D_pending  (* launch begun, DEV not yet set *)
  | D_covered of { addr : int; len : int; zeroized : bool }

let dev_covers_slb =
  Auto
    {
      spec_name = "dev-covers-slb";
      spec_property =
        "the DEV protects the SLB window from before the SKINIT measurement \
         until the window is zeroized";
      spec_paper = "§2.2, §5.1";
      init = D_idle;
      encode =
        (function
        | D_idle -> "i"
        | D_pending -> "p"
        | D_covered { addr; len; zeroized } ->
            Printf.sprintf "c%x:%x:%b" addr len zeroized);
      step =
        (fun st ev ->
          match (st, ev) with
          | (D_idle | D_pending), Event.Skinit_begin _ -> Ok D_pending
          | D_pending, Event.Dev_protect { addr; len } ->
              Ok (D_covered { addr; len; zeroized = false })
          | D_pending, Event.Pcr_extend { index = 17; kind = Event.Measure } ->
              Error
                "SKINIT measured the SLB into PCR 17 with no DEV protection \
                 over the window"
          | (D_covered c as st), Event.Zeroize { addr; len } ->
              if covers ~outer:(addr, len) ~inner:(c.addr, c.len) then
                Ok (D_covered { c with zeroized = true })
              else Ok st
          | (D_covered c as st), Event.Dev_unprotect { addr; len } ->
              if overlaps addr len c.addr c.len then
                if c.zeroized then Ok D_idle
                else
                  Error
                    "DEV protection over the SLB dropped before the window \
                     was zeroized"
              else Ok st
          | D_covered c, Event.Dev_clear ->
              if c.zeroized then Ok D_idle
              else
                Error
                  "DEV cleared while an un-zeroized SLB window was protected"
          | _, Event.Pcr_reboot -> Ok D_idle
          | st, _ -> Ok st);
    }

(* --- zeroize-before-exit ---------------------------------------------- *)

type zero_state =
  | Z_idle
  | Z_armed of { window : (int * int) option; zeroized : bool }

let zeroize_before_exit =
  Auto
    {
      spec_name = "zeroize-before-exit";
      spec_property = "the SLB window is zeroized before the OS resumes";
      spec_paper = "§4.3";
      init = Z_idle;
      encode =
        (function
        | Z_idle -> "i"
        | Z_armed { window; zeroized } ->
            Printf.sprintf "a%s:%b"
              (match window with
              | Some (a, l) -> Printf.sprintf "%x+%x" a l
              | None -> "?")
              zeroized);
      step =
        (fun st ev ->
          match (st, ev) with
          | _, Event.Skinit_begin _ ->
              Ok (Z_armed { window = None; zeroized = false })
          | Z_armed ({ window = None; _ } as a), Event.Dev_protect { addr; len }
            ->
              Ok (Z_armed { a with window = Some (addr, len) })
          | (Z_armed a as st), Event.Zeroize { addr; len } -> (
              match a.window with
              | Some w when not (covers ~outer:(addr, len) ~inner:w) -> Ok st
              | _ -> Ok (Z_armed { a with zeroized = true }))
          | Z_armed { zeroized = true; _ }, Event.Os_resume -> Ok Z_idle
          | Z_armed { zeroized = false; _ }, Event.Os_resume ->
              Error "OS resumed before the SLB window was zeroized"
          | _, Event.Pcr_reboot -> Ok Z_idle
          | st, _ -> Ok st);
    }

(* --- extend-order ------------------------------------------------------ *)

(* Rank of the last session-labeled PCR 17 extend:
   -1 inactive, 0 after dynamic reset, 1 measured, 2 stub,
   3 inputs, 4 outputs, 5 nonce, 6 capped. *)
let rank_name = function
  | -1 -> "outside a launch"
  | 0 -> "after dynamic reset"
  | 1 -> "after the SKINIT measurement"
  | 2 -> "after the stub extend"
  | 3 -> "after the inputs extend"
  | 4 -> "after the outputs extend"
  | 5 -> "after the nonce extend"
  | 6 -> "after the cap"
  | _ -> "?"

let extend_order =
  Auto
    {
      spec_name = "extend-order";
      spec_property =
        "PCR 17 extends follow reset, measure+, stub?, inputs, outputs, \
         nonce?, cap";
      spec_paper = "§4.2–4.3, §5.2";
      init = -1;
      encode = string_of_int;
      step =
        (fun rank ev ->
          match ev with
          | Event.Pcr_reset -> Ok 0
          | Event.Pcr_reboot -> Ok (-1)
          | Event.Pcr_extend { index = 17; kind } -> (
              let allowed kind_rank froms =
                if List.mem rank froms then Ok kind_rank
                else
                  Error
                    (Printf.sprintf "%s extend of PCR 17 %s"
                       (Event.pcr_kind_to_string kind)
                       (rank_name rank))
              in
              match kind with
              | Event.Software | Event.Other _ -> Ok rank
              | Event.Measure -> allowed 1 [ 0; 1 ]
              | Event.Stub -> allowed 2 [ 1 ]
              | Event.Input -> allowed 3 [ 1; 2 ]
              | Event.Output -> allowed 4 [ 3 ]
              | Event.Nonce -> allowed 5 [ 4 ]
              | Event.Cap -> allowed 6 [ 1; 2; 4; 5 ])
          | _ -> Ok rank);
    }

(* --- nv-monotonic ------------------------------------------------------ *)

type nv_state = {
  counters : (int * int) list;  (* monotonic-counter handle -> last value *)
  nv : (int * int) list;  (* NV index -> last 4-byte counter value *)
  dead : int list;  (* NV indices that stopped holding counters *)
}

let assoc_set k v l =
  List.sort_uniq compare ((k, v) :: List.remove_assoc k l)

let nv_monotonic =
  Auto
    {
      spec_name = "nv-monotonic";
      spec_property =
        "monotonic counters strictly increase and NV counter values \
         strictly advance on every write";
      spec_paper = "§4.4";
      init = { counters = []; nv = []; dead = [] };
      encode =
        (fun s ->
          Printf.sprintf "%s|%s|%s"
            (String.concat ","
               (List.map (fun (k, v) -> Printf.sprintf "%d:%d" k v) s.counters))
            (String.concat ","
               (List.map (fun (k, v) -> Printf.sprintf "%d:%d" k v) s.nv))
            (String.concat "," (List.map string_of_int (List.sort compare s.dead))));
      step =
        (fun st ev ->
          match ev with
          | Event.Counter_increment { handle; value } -> (
              match List.assoc_opt handle st.counters with
              | Some prev when value <= prev ->
                  Error
                    (Printf.sprintf
                       "monotonic counter %d went from %d to %d (must \
                        strictly increase)"
                       handle prev value)
              | _ -> Ok { st with counters = assoc_set handle value st.counters })
          | Event.Nv_write { index; counter = Some c } ->
              if List.mem index st.dead then Ok st
              else (
                match List.assoc_opt index st.nv with
                | Some prev when c < prev ->
                    Error
                      (Printf.sprintf
                         "NV counter at index %#x rolled back from %d to %d"
                         index prev c)
                | Some prev when c = prev ->
                    (* a re-write of the same counter value is a reseal
                       that did not advance the counter: the signature of
                       a replayed blob being persisted (§4.4) *)
                    Error
                      (Printf.sprintf
                         "NV counter at index %#x rewritten with %d without \
                          advancing"
                         index c)
                | _ -> Ok { st with nv = assoc_set index c st.nv })
          | Event.Nv_write { index; counter = None } ->
              (* the index no longer holds a counter; stop tracking it *)
              Ok
                {
                  st with
                  nv = List.remove_assoc index st.nv;
                  dead = List.sort_uniq compare (index :: st.dead);
                }
          | _ -> Ok st);
    }

(* --- fresh-nv-on-launch ------------------------------------------------- *)

(* A PAL that re-writes an existing NV counter inside a launch must have
   read the index first in that same launch: without a fresh read there
   is nothing to compare a sealed blob's counter against, so the PAL
   cannot have performed the §4.4 freshness check. First-time writes
   (provisioning, [Replay.Nv.init]) are exempt; so are writes outside a
   launch, which are the OS's business. *)

type fresh_state = {
  f_in_launch : bool;
  f_seen : int list;  (* NV indices that already hold a counter *)
  f_read : int list;  (* indices read since the current launch began *)
}

let fresh_nv_on_launch =
  Auto
    {
      spec_name = "fresh-nv-on-launch";
      spec_property =
        "a launch that re-writes an NV counter reads that index first in \
         the same launch (no reseal without a freshness check)";
      spec_paper = "§4.4";
      init = { f_in_launch = false; f_seen = []; f_read = [] };
      encode =
        (fun s ->
          Printf.sprintf "%b|%s|%s" s.f_in_launch
            (String.concat "," (List.map string_of_int (List.sort compare s.f_seen)))
            (String.concat "," (List.map string_of_int (List.sort compare s.f_read))));
      step =
        (fun st ev ->
          match ev with
          | Event.Skinit_begin _ -> Ok { st with f_in_launch = true; f_read = [] }
          | Event.Os_resume | Event.Pcr_reboot ->
              Ok { st with f_in_launch = false; f_read = [] }
          | Event.Nv_read { index } ->
              if st.f_in_launch then
                Ok { st with f_read = List.sort_uniq compare (index :: st.f_read) }
              else Ok st
          | Event.Nv_write { index; counter = Some _ } ->
              if
                st.f_in_launch
                && List.mem index st.f_seen
                && not (List.mem index st.f_read)
              then
                Error
                  (Printf.sprintf
                     "NV counter at index %#x rewritten inside a launch with \
                      no fresh read of the index"
                     index)
              else Ok { st with f_seen = List.sort_uniq compare (index :: st.f_seen) }
          | Event.Nv_write { index; counter = None } ->
              (* the index no longer holds a counter *)
              Ok { st with f_seen = List.filter (( <> ) index) st.f_seen }
          | _ -> Ok st);
    }

(* --- no-unchecked-dma --------------------------------------------------- *)

type dma_state = N_idle | N_armed of { window : (int * int) option }

let no_unchecked_dma =
  Auto
    {
      spec_name = "no-unchecked-dma";
      spec_property =
        "no DMA reaches the SLB window un-denied while a PAL session is live";
      spec_paper = "§2.2";
      init = N_idle;
      encode =
        (function
        | N_idle -> "i"
        | N_armed { window = None } -> "a?"
        | N_armed { window = Some (a, l) } -> Printf.sprintf "a%x+%x" a l);
      step =
        (fun st ev ->
          match (st, ev) with
          | _, Event.Skinit_begin _ -> Ok (N_armed { window = None })
          | N_armed { window = None }, Event.Dev_protect { addr; len } ->
              Ok (N_armed { window = Some (addr, len) })
          | ( (N_armed { window = Some (wa, wl) } as st),
              Event.Dma_attempt { addr; len; denied; _ } ) ->
              if (not denied) && overlaps addr len wa wl then
                Error
                  (Printf.sprintf
                     "DMA at %#x (+%d) reached the SLB window during a PAL \
                      session without being denied"
                     addr len)
              else Ok st
          | (N_armed { window = Some w } as st), Event.Zeroize { addr; len } ->
              (* once the window is wiped there is nothing left to read *)
              if covers ~outer:(addr, len) ~inner:w then Ok N_idle else Ok st
          | N_armed _, Event.Os_resume -> Ok N_idle
          | _, Event.Pcr_reboot -> Ok N_idle
          | st, _ -> Ok st);
    }

(* --- suspend-before-launch ---------------------------------------------- *)

let suspend_before_launch =
  Auto
    {
      spec_name = "suspend-before-launch";
      spec_property = "a late launch only happens while the OS is suspended";
      spec_paper = "§4.1";
      init = false (* suspended? *);
      encode = string_of_bool;
      step =
        (fun suspended ev ->
          match ev with
          | Event.Os_suspend -> Ok true
          | Event.Os_resume -> Ok false
          | Event.Skinit_begin _ when not suspended ->
              Error "late launch invoked while the OS was still running"
          | _ -> Ok suspended);
    }

let all =
  [
    cap_before_resume;
    dev_covers_slb;
    zeroize_before_exit;
    extend_order;
    nv_monotonic;
    fresh_nv_on_launch;
    no_unchecked_dma;
    suspend_before_launch;
  ]

let find n = List.find_opt (fun a -> name a = n) all
