(* Pluggable adversary models for the model checker. Each kind is a
   budgeted set of actions the environment may schedule between session
   blocks; the Model composes them with the session program and the Mc
   partial-order reduction uses their footprints to decide what
   commutes. *)

type kind = Dma | Reset | Replay | Corrupt_os

let all_kinds = [ Dma; Reset; Replay; Corrupt_os ]

let kind_name = function
  | Dma -> "dma"
  | Reset -> "reset"
  | Replay -> "replay"
  | Corrupt_os -> "corrupt-os"

let kind_of_name n = List.find_opt (fun k -> kind_name k = n) all_kinds

let kind_doc = function
  | Dma ->
      ( "a malicious device probing the SLB window over the bus",
        "dma.attempt (read/write)",
        "clear-dev-early (an un-denied probe while secrets are live)" )
  | Reset ->
      ( "power-cycles the platform mid-protocol; volatile state is lost, \
         NV and monotonic counters persist",
        "pcr.reboot",
        "trust-state-across-reset" )
  | Replay ->
      ( "records an earlier session's sealed blob / NV snapshot and \
         re-presents it to a later session",
        "replay.record, replay.inject",
        "reseal-without-counter-check" )
  | Corrupt_os ->
      ( "drops, duplicates or swaps the input/output messages crossing \
         the untrusted OS while it is running",
        "os.inject(drop-msg|dup-msg|swap-msg), pcr.extend(17,software)",
        "nothing by design: message tampering is caught by attestation \
         hashes, not lifecycle order" )

type config = {
  kinds : kind list;
  dma_probes : int;
  resets : int;
  replay_records : int;
  replay_injects : int;
  os_injections : int;
}

let default =
  {
    kinds = [ Dma ];
    dma_probes = 2;
    resets = 1;
    replay_records = 1;
    replay_injects = 1;
    os_injections = 2;
  }

let of_kinds kinds = { default with kinds }
let none = { default with kinds = [] }

let name cfg =
  match cfg.kinds with
  | [] -> "none"
  | ks -> String.concat "+" (List.map kind_name ks)

let active cfg k = List.mem k cfg.kinds

(* Remaining budgets: the dynamic half of an adversary, carried in the
   model-checker state and part of the dedup key. *)
type budgets = {
  probes : int;
  resets : int;
  records : int;
  injects : int;
  os_injs : int;
}

let budgets_of cfg =
  {
    probes = (if active cfg Dma then cfg.dma_probes else 0);
    resets = (if active cfg Reset then cfg.resets else 0);
    records = (if active cfg Replay then cfg.replay_records else 0);
    injects = (if active cfg Replay then cfg.replay_injects else 0);
    os_injs = (if active cfg Corrupt_os then cfg.os_injections else 0);
  }

let encode_budgets b =
  Printf.sprintf "%d.%d.%d.%d.%d" b.probes b.resets b.records b.injects
    b.os_injs

(* What the adversary can see of the machine when choosing an action. *)
type view = {
  dev_up : bool;
  suspended : bool;
  at_end : bool;  (* the session program has run to completion *)
  blob : int;  (* counter bound into the sealed blob at rest *)
  recorded : int option;  (* a previously recorded blob, if any *)
  slb_addr : int;
  probe_len : int;
  denies : bool;  (* would the DEV deny a probe of the window right now *)
}

(* The machine-level consequence of an action, applied by the Model
   (which owns the machine representation). *)
type effect = Spend_probe | Do_reset | Do_record | Do_inject | Spend_os

type action = {
  act_label : string;
  act_events : Event.t list;
  act_effect : effect;
}

let spend b = function
  | Spend_probe -> { b with probes = b.probes - 1 }
  | Do_reset -> { b with resets = b.resets - 1 }
  | Do_record -> { b with records = b.records - 1 }
  | Do_inject -> { b with injects = b.injects - 1 }
  | Spend_os -> { b with os_injs = b.os_injs - 1 }

let actions b (v : view) =
  if v.at_end then []
  else
    let dma =
      if b.probes <= 0 then []
      else
        let probe write nm =
          {
            act_label = nm;
            act_events =
              [
                Event.Dma_attempt
                  {
                    addr = v.slb_addr;
                    len = v.probe_len;
                    write;
                    denied = v.denies;
                  };
              ];
            act_effect = Spend_probe;
          }
        in
        [ probe false "adv-dma-read"; probe true "adv-dma-write" ]
    in
    let reset =
      (* a power cycle is only interesting mid-protocol: while the DEV is
         up some launch is in flight and volatile trust state exists *)
      if b.resets <= 0 || not v.dev_up then []
      else
        [
          {
            act_label = "adv-reset";
            act_events = [ Event.Pcr_reboot ];
            act_effect = Do_reset;
          };
        ]
    in
    let replay =
      (* the replay adversary is corrupt OS software: it only runs while
         the OS is running (a suspended OS schedules nothing) *)
      if v.suspended then []
      else
        (if b.records <= 0 then []
         else
           [
             {
               act_label = "adv-replay-record";
               act_events = [ Event.Replay_record { counter = v.blob } ];
               act_effect = Do_record;
             };
           ])
        @
        match v.recorded with
        | Some c when b.injects > 0 ->
            [
              {
                act_label = "adv-replay-inject";
                act_events = [ Event.Replay_inject { counter = c } ];
                act_effect = Do_inject;
              };
            ]
        | _ -> []
    in
    let corrupt_os =
      if b.os_injs <= 0 || v.suspended then []
      else
        let tamper what =
          {
            act_label = "adv-os-" ^ what;
            act_events = [ Event.Os_inject { what } ];
            act_effect = Spend_os;
          }
        in
        [
          tamper "drop-msg";
          tamper "dup-msg";
          tamper "swap-msg";
          {
            act_label = "adv-os-forge-extend";
            act_events =
              [ Event.Pcr_extend { index = 17; kind = Event.Software } ];
            act_effect = Spend_os;
          };
        ]
    in
    dma @ reset @ replay @ corrupt_os

(* Effects the adversary could still fire from here, via adversary-only
   action sequences (the enabling closure the persistent-set selector
   needs): a record with remaining budget can enable an inject even when
   nothing is recorded yet. *)
let potential b (v : view) =
  if v.at_end then []
  else
    (if b.probes > 0 then [ Spend_probe ] else [])
    @ (if b.resets > 0 && v.dev_up then [ Do_reset ] else [])
    @ (if b.records > 0 && not v.suspended then [ Do_record ] else [])
    @ (if
         b.injects > 0
         && (not v.suspended)
         && (v.recorded <> None || b.records > 0)
       then [ Do_inject ]
       else [])
    @ if b.os_injs > 0 && not v.suspended then [ Spend_os ] else []
