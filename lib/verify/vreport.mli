(** SARIF-style output for the temporal verifier, matching the shape the
    static analyzer ({!Flicker_analysis.Report}) emits: a top-level
    [version]/[runs] document where each run carries the tool driver
    with rule descriptors, the results, and a property bag with the
    run's headline numbers. Conformance checks and model-checking runs
    each become one SARIF run. *)

val conformance_run :
  subject:string -> Checker.report -> Flicker_obs.Json.t
(** One SARIF run for a trace-conformance check of [subject] (a
    workload or session name). Properties carry [events_checked] and
    [violations]. *)

val mc_run :
  ?adversary:Adversary.config ->
  ?sessions:int ->
  Model.variant ->
  expected_violation:bool ->
  Mc.result ->
  Flicker_obs.Json.t
(** One SARIF run for a model-checking pass. [expected_violation] marks
    the deliberately broken variants: for those, a found counterexample
    is reported at level ["note"] (the check {e passing}) and a missed
    one as an ["error"]. [adversary] and [sessions] (defaults: DMA-only,
    one session) are recorded in the property bag alongside the search
    statistics, POR flag and counterexample length. *)

val document : Flicker_obs.Json.t list -> Flicker_obs.Json.t
(** Wrap runs into the [{version; runs}] document. *)

val mc_missed_violation : Mc.result -> expected_violation:bool -> bool
(** True when a broken variant was NOT caught (or a good variant was
    flagged) — the gate condition for CI. *)
