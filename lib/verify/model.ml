type variant =
  | Good
  | Resume_before_cap
  | Clear_dev_early
  | Skip_zeroize
  | Nv_rollback
  | Launch_unsuspended
  | Out_of_order_extends
  | Reseal_without_counter_check
  | Trust_state_across_reset

let variant_name = function
  | Good -> "good"
  | Resume_before_cap -> "resume-before-cap"
  | Clear_dev_early -> "clear-dev-early"
  | Skip_zeroize -> "skip-zeroize"
  | Nv_rollback -> "nv-rollback"
  | Launch_unsuspended -> "launch-unsuspended"
  | Out_of_order_extends -> "out-of-order-extends"
  | Reseal_without_counter_check -> "reseal-without-counter-check"
  | Trust_state_across_reset -> "trust-state-across-reset"

let all_variants =
  [
    Good;
    Resume_before_cap;
    Clear_dev_early;
    Skip_zeroize;
    Nv_rollback;
    Launch_unsuspended;
    Out_of_order_extends;
    Reseal_without_counter_check;
    Trust_state_across_reset;
  ]

let broken_variants = List.filter (fun v -> v <> Good) all_variants

let variant_of_name n =
  List.find_opt (fun v -> variant_name v = n) all_variants

(* Which adversary model a planted bug needs before it manifests. [None]
   means the bug is in the session's own ordering and any adversary (or
   none) exposes it. *)
let requires = function
  | Reseal_without_counter_check -> Some Adversary.Replay
  | Trust_state_across_reset -> Some Adversary.Reset
  | _ -> None

let default_sessions = function
  | Good | Reseal_without_counter_check -> 2
  | _ -> 1

let intended_adversary = function
  | Good -> (Adversary.of_kinds Adversary.all_kinds, 2)
  | Reseal_without_counter_check -> (Adversary.of_kinds [ Adversary.Replay ], 2)
  | Trust_state_across_reset -> (Adversary.of_kinds [ Adversary.Reset ], 1)
  | _ -> (Adversary.default, 1)

(* The abstract machine: exactly what the automata observe, plus the
   sealed-blob/recording state the replay adversary manipulates. *)
type machine = {
  dev : (int * int) option;
  suspended : bool;
  counter : int;  (* monotonic counter's current value; persists NV-side *)
  nv : int;  (* 4-byte counter stored at the NV index; persists *)
  blob : int;  (* counter bound into the sealed blob at rest; persists *)
  recorded : int option;  (* the replay adversary's copy, if taken *)
}

type state = {
  variant : variant;
  sessions : int;
  cfg : Adversary.config;  (* static per run; not part of the dedup key *)
  pc : int;
  budgets : Adversary.budgets;
  m : machine;
}

(* Fixed geometry of the modeled session (values are arbitrary but
   stable; the automata only care about containment and overlap). *)
let slb_addr = 0x30000
let slb_len = 0x10000
let nv_index = 0x1200
let counter_handle = 1
let probe_len = 4096

(* --- footprints -------------------------------------------------------- *)

(* State variables, as a bitmask, for the independence relation. *)
let v_pc = 1
let v_dev = 2
let v_susp = 4
let v_counter = 8
let v_nv = 16
let v_blob = 32
let v_recorded = 64
let v_b_probe = 128
let v_b_reset = 256
let v_b_record = 512
let v_b_inject = 1024
let v_b_os = 2048

type footprint = { reads : int; writes : int; visible : bool }

let fp_empty = { reads = 0; writes = 0; visible = false }

let fp_union a b =
  {
    reads = a.reads lor b.reads;
    writes = a.writes lor b.writes;
    visible = a.visible || b.visible;
  }

let fp_visible fp = fp.visible

(* Two transitions commute iff their variable footprints are disjoint in
   the write-write and write-read directions. Event visibility is judged
   separately by the selector: only universally-invisible events (ones
   every automaton ignores in every state) may be reordered past the
   session, because monitor states must agree in both orders. *)
let independent a b =
  a.writes land b.writes = 0
  && a.writes land b.reads = 0
  && a.reads land b.writes = 0

let session_kind_on_17 (kind : Event.pcr_kind) =
  match kind with
  | Event.Software | Event.Other _ -> false
  | Event.Measure | Event.Stub | Event.Input | Event.Output | Event.Nonce
  | Event.Cap ->
      true

(* Per-event footprint: which machine variables the event's application
   touches, and whether any automaton could observe it (change state or
   reject). The [visible = false] classifications are load-bearing for
   the reduction and are exercised by the POR-vs-full QCheck property:
   denied DMA, software/other extends, replay bookkeeping and corrupt-OS
   message tampering are ignored by every automaton in every state. *)
let event_fp (ev : Event.t) =
  match ev with
  | Event.Dev_protect _ | Event.Dev_unprotect _ | Event.Dev_clear ->
      { reads = 0; writes = v_dev; visible = true }
  | Event.Os_suspend | Event.Os_resume ->
      { reads = 0; writes = v_susp; visible = true }
  | Event.Skinit_begin _ | Event.Skinit_end | Event.Pcr_reset ->
      { fp_empty with visible = true }
  | Event.Pcr_reboot ->
      (* volatile state is lost on a power cycle *)
      { reads = 0; writes = v_dev lor v_susp; visible = true }
  | Event.Pcr_extend { index; kind } ->
      { fp_empty with visible = index = 17 && session_kind_on_17 kind }
  | Event.Nv_read _ -> { reads = v_nv; writes = 0; visible = true }
  | Event.Nv_write _ ->
      { reads = 0; writes = v_nv lor v_blob; visible = true }
  | Event.Counter_increment _ ->
      { reads = 0; writes = v_counter; visible = true }
  | Event.Zeroize _ -> { fp_empty with visible = true }
  | Event.Session_begin _ | Event.Session_end -> fp_empty
  | Event.Dma_attempt { denied; _ } ->
      { reads = v_dev; writes = 0; visible = not denied }
  | Event.Replay_record _ ->
      { reads = v_blob; writes = v_recorded; visible = false }
  | Event.Replay_inject _ ->
      { reads = v_recorded; writes = v_blob; visible = false }
  | Event.Os_inject _ -> fp_empty

let events_fp evs = List.fold_left (fun fp e -> fp_union fp (event_fp e)) fp_empty evs

(* Effect footprint: budget spent plus the enabling-condition variables
   (a transition that writes a gate variable can disable the action, so
   the gate reads participate in the independence check). *)
let effect_fp (e : Adversary.effect) =
  match e with
  | Adversary.Spend_probe ->
      { reads = v_b_probe lor v_dev; writes = v_b_probe; visible = false }
  | Adversary.Do_reset ->
      {
        reads = v_b_reset lor v_dev;
        writes = v_b_reset lor v_dev lor v_susp lor v_pc;
        visible = true;
      }
  | Adversary.Do_record ->
      {
        reads = v_b_record lor v_susp lor v_blob;
        writes = v_b_record lor v_recorded;
        visible = false;
      }
  | Adversary.Do_inject ->
      {
        reads = v_b_inject lor v_susp lor v_recorded;
        writes = v_b_inject lor v_blob;
        visible = false;
      }
  | Adversary.Spend_os ->
      { reads = v_b_os lor v_susp; writes = v_b_os; visible = false }

(* --- the session program ----------------------------------------------- *)

type block = {
  b_label : string;
  b_emit : machine -> Event.t list;
  b_reads : int;  (* machine vars the emission function consults *)
}

let ext kind = Event.Pcr_extend { index = 17; kind }
let fresh m = m.blob = m.nv

(* One session as atomic blocks. The SKINIT block bundles protect +
   reset + measure + end: a single instruction on real hardware. Each
   block may read the machine to compute event payloads; a disciplined
   PAL gates its NV work on the sealed blob matching the NV counter
   (the §4.4 freshness check) and silently aborts the NV update when a
   stale blob was presented. *)
let session_program variant : block list =
  let b ?(reads = 0) b_label b_emit = { b_label; b_emit; b_reads = reads } in
  let begin_ = b "session" (fun _ -> [ Event.Session_begin "model" ]) in
  let suspend = b "suspend" (fun _ -> [ Event.Os_suspend ]) in
  let skinit =
    b "skinit" (fun _ ->
        [
          Event.Skinit_begin "svm";
          Event.Dev_protect { addr = slb_addr; len = slb_len };
          Event.Pcr_reset;
          ext Event.Measure;
          Event.Skinit_end;
        ])
  in
  let stub = b "stub-extend" (fun _ -> [ ext Event.Stub ]) in
  let pal_read = b "pal-nv-read" (fun _ -> [ Event.Nv_read { index = nv_index } ]) in
  let pal_incr =
    b "pal-counter-incr"
      ~reads:(v_counter lor v_nv lor v_blob)
      (fun m ->
        if fresh m then
          [ Event.Counter_increment { handle = counter_handle; value = m.counter + 1 } ]
        else [])
  in
  let pal_write =
    b "pal-nv-write"
      ~reads:(v_nv lor v_blob)
      (fun m ->
        if fresh m then
          [ Event.Nv_write { index = nv_index; counter = Some (m.nv + 1) } ]
        else [])
  in
  (* the planted reseal bug: the PAL reads NV but never compares it
     against the unsealed blob's counter — it increments *the blob's*
     counter and persists that, so a replayed blob is resealed as if
     fresh *)
  let pal_incr_unchecked =
    b "pal-counter-incr" ~reads:v_counter (fun m ->
        [ Event.Counter_increment { handle = counter_handle; value = m.counter + 1 } ])
  in
  let pal_reseal_unchecked =
    b "pal-nv-reseal" ~reads:v_blob (fun m ->
        [ Event.Nv_write { index = nv_index; counter = Some (m.blob + 1) } ])
  in
  let zeroize =
    b "zeroize" (fun _ -> [ Event.Zeroize { addr = slb_addr; len = slb_len } ])
  in
  let inputs = b "extend-inputs" (fun _ -> [ ext Event.Input ]) in
  let outputs = b "extend-outputs" (fun _ -> [ ext Event.Output ]) in
  let nonce = b "extend-nonce" (fun _ -> [ ext Event.Nonce ]) in
  let cap = b "extend-cap" (fun _ -> [ ext Event.Cap ]) in
  let teardown =
    b "teardown-dev"
      (fun _ -> [ Event.Dev_unprotect { addr = slb_addr; len = slb_len } ])
  in
  let resume = b "resume" (fun _ -> [ Event.Os_resume ]) in
  let end_ = b "session-end" (fun _ -> [ Event.Session_end ]) in
  let pal = [ pal_read; pal_incr; pal_write ] in
  match variant with
  | Good | Trust_state_across_reset ->
      (* Trust_state_across_reset runs the disciplined program too: its
         bug is in the reset path, where it keeps executing as if the
         launch survived the power cycle (see [transitions]) *)
      [ begin_; suspend; skinit; stub ]
      @ pal
      @ [ zeroize; inputs; outputs; nonce; cap; teardown; resume; end_ ]
  | Resume_before_cap ->
      (* the bug: teardown + resume jump the queue; the cap lands late *)
      [ begin_; suspend; skinit; stub ]
      @ pal
      @ [ zeroize; inputs; outputs; nonce; teardown; resume; cap; end_ ]
  | Clear_dev_early ->
      let clear = b "clear-dev" (fun _ -> [ Event.Dev_clear ]) in
      [ begin_; suspend; skinit; stub; clear ]
      @ pal
      @ [ zeroize; inputs; outputs; nonce; cap; resume; end_ ]
  | Skip_zeroize ->
      (* the whole cleanup block is skipped: no wipe, no DEV teardown *)
      [ begin_; suspend; skinit; stub ]
      @ pal
      @ [ inputs; outputs; nonce; cap; resume; end_ ]
  | Nv_rollback ->
      let stale =
        b "restore-stale-nv" ~reads:v_nv (fun m ->
            (* "restore" the pre-session snapshot: one less than current *)
            [ Event.Nv_write { index = nv_index; counter = Some (m.nv - 1) } ])
      in
      [ begin_; suspend; skinit; stub ]
      @ pal
      @ [ stale; zeroize; inputs; outputs; nonce; cap; teardown; resume; end_ ]
  | Launch_unsuspended ->
      [ begin_; skinit; stub ]
      @ pal
      @ [ zeroize; inputs; outputs; nonce; cap; teardown; resume; end_ ]
  | Out_of_order_extends ->
      [ begin_; suspend; skinit; stub ]
      @ pal
      @ [ zeroize; outputs; inputs; nonce; cap; teardown; resume; end_ ]
  | Reseal_without_counter_check ->
      [ begin_; suspend; skinit; stub ]
      @ [ pal_read; pal_incr_unchecked; pal_reseal_unchecked ]
      @ [ zeroize; inputs; outputs; nonce; cap; teardown; resume; end_ ]

(* Flattened program for [sessions] back-to-back runs, with, per pc, the
   index where the *next* session starts (= where a mid-protocol reset
   lands a disciplined platform). Memoized: every state of one checker
   run shares it. *)
let programs : (variant * int, block array * int array) Hashtbl.t =
  Hashtbl.create 16

let program variant sessions =
  match Hashtbl.find_opt programs (variant, sessions) with
  | Some p -> p
  | None ->
      let one = session_program variant in
      let len1 = List.length one in
      let blocks =
        Array.concat (List.init sessions (fun _ -> Array.of_list one))
      in
      let next_start =
        Array.init (Array.length blocks) (fun i -> ((i / len1) + 1) * len1)
      in
      Hashtbl.replace programs (variant, sessions) (blocks, next_start);
      (blocks, next_start)

(* --- semantics --------------------------------------------------------- *)

let apply m (ev : Event.t) =
  match ev with
  | Event.Dev_protect { addr; len } -> { m with dev = Some (addr, len) }
  | Event.Dev_unprotect _ | Event.Dev_clear -> { m with dev = None }
  | Event.Os_suspend -> { m with suspended = true }
  | Event.Os_resume -> { m with suspended = false }
  | Event.Counter_increment { value; _ } -> { m with counter = value }
  | Event.Nv_write { counter = Some c; _ } ->
      (* an NV counter write is a reseal: the blob at rest now binds c *)
      { m with nv = c; blob = c }
  | Event.Pcr_reboot -> { m with dev = None; suspended = false }
  | Event.Replay_record { counter } -> { m with recorded = Some counter }
  | Event.Replay_inject { counter } -> { m with blob = counter }
  | _ -> m

let apply_all m evs = List.fold_left apply m evs

let initial ?adversary ?sessions ?dma_probes variant =
  let cfg =
    match (adversary, dma_probes) with
    | Some cfg, _ -> cfg
    | None, Some n -> { Adversary.default with Adversary.dma_probes = n }
    | None, None -> Adversary.default
  in
  let sessions =
    match sessions with Some n -> max 1 n | None -> default_sessions variant
  in
  {
    variant;
    sessions;
    cfg;
    pc = 0;
    budgets = Adversary.budgets_of cfg;
    m =
      {
        dev = None;
        suspended = false;
        counter = 7;
        nv = 7;
        blob = 7;
        recorded = None;
      };
  }

let dev_denies m ~addr ~len =
  match m.dev with
  | None -> false
  | Some (da, dl) -> addr < da + dl && da < addr + len

let view st ~at_end =
  {
    Adversary.dev_up = st.m.dev <> None;
    suspended = st.m.suspended;
    at_end;
    blob = st.m.blob;
    recorded = st.m.recorded;
    slb_addr;
    probe_len;
    denies = dev_denies st.m ~addr:slb_addr ~len:probe_len;
  }

type source = Session | Attack of Adversary.effect

type trans = {
  label : string;
  events : Event.t list;
  succ : state;
  source : source;
  fp : footprint;
}

let transitions st =
  let blocks, next_start = program st.variant st.sessions in
  let len = Array.length blocks in
  let at_end = st.pc >= len in
  let session =
    if at_end then []
    else
      let blk = blocks.(st.pc) in
      let events = blk.b_emit st.m in
      [
        {
          label = blk.b_label;
          events;
          succ = { st with pc = st.pc + 1; m = apply_all st.m events };
          source = Session;
          fp =
            fp_union (events_fp events)
              { reads = blk.b_reads lor v_pc; writes = v_pc; visible = false };
        };
      ]
  in
  let adversary =
    List.map
      (fun (a : Adversary.action) ->
        let pc' =
          match a.Adversary.act_effect with
          | Adversary.Do_reset when st.variant <> Trust_state_across_reset ->
              (* a power cycle aborts the in-flight session; a disciplined
                 platform relaunches from scratch (the next session).
                 The planted bug keeps executing where it left off, as
                 if volatile trust state had survived. *)
              next_start.(st.pc)
          | _ -> st.pc
        in
        {
          label = a.Adversary.act_label;
          events = a.Adversary.act_events;
          succ =
            {
              st with
              pc = pc';
              budgets = Adversary.spend st.budgets a.Adversary.act_effect;
              m = apply_all st.m a.Adversary.act_events;
            };
          source = Attack a.Adversary.act_effect;
          fp =
            fp_union
              (events_fp a.Adversary.act_events)
              (effect_fp a.Adversary.act_effect);
        })
      (Adversary.actions st.budgets (view st ~at_end))
  in
  session @ adversary

let postponable st =
  let blocks, _ = program st.variant st.sessions in
  let at_end = st.pc >= Array.length blocks in
  let v = view st ~at_end in
  List.map
    (fun e ->
      let fp = effect_fp e in
      match e with
      | Adversary.Spend_probe ->
          (* the probe's event content is judged at the current DEV: if it
             would be denied it is invisible, and any transition that
             changes the DEV conflicts through [v_dev] anyway *)
          { fp with visible = fp.visible || not v.Adversary.denies }
      | _ -> fp)
    (Adversary.potential st.budgets v)

let encode st =
  Printf.sprintf "%d|%s|%s|%b|%d|%d|%d|%s" st.pc
    (Adversary.encode_budgets st.budgets)
    (match st.m.dev with
    | None -> "-"
    | Some (a, l) -> Printf.sprintf "%x+%x" a l)
    st.m.suspended st.m.counter st.m.nv st.m.blob
    (match st.m.recorded with None -> "-" | Some c -> string_of_int c)
