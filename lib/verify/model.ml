type variant =
  | Good
  | Resume_before_cap
  | Clear_dev_early
  | Skip_zeroize
  | Nv_rollback
  | Launch_unsuspended
  | Out_of_order_extends

let variant_name = function
  | Good -> "good"
  | Resume_before_cap -> "resume-before-cap"
  | Clear_dev_early -> "clear-dev-early"
  | Skip_zeroize -> "skip-zeroize"
  | Nv_rollback -> "nv-rollback"
  | Launch_unsuspended -> "launch-unsuspended"
  | Out_of_order_extends -> "out-of-order-extends"

let all_variants =
  [
    Good;
    Resume_before_cap;
    Clear_dev_early;
    Skip_zeroize;
    Nv_rollback;
    Launch_unsuspended;
    Out_of_order_extends;
  ]

let broken_variants = List.filter (fun v -> v <> Good) all_variants

let variant_of_name n =
  List.find_opt (fun v -> variant_name v = n) all_variants

(* The abstract machine: exactly what the automata observe. *)
type machine = {
  dev : (int * int) option;
  suspended : bool;
  counter : int;  (* monotonic counter's current value *)
  nv : int;  (* 4-byte counter stored at the NV index *)
}

type state = { variant : variant; pc : int; probes : int; m : machine }

(* Fixed geometry of the modeled session (values are arbitrary but
   stable; the automata only care about containment and overlap). *)
let slb_addr = 0x30000
let slb_len = 0x10000
let nv_index = 0x1200
let counter_handle = 1

let ext kind = Event.Pcr_extend { index = 17; kind }

(* One session as atomic blocks. The SKINIT block bundles protect +
   reset + measure + end: a single instruction on real hardware. Each
   block may read the machine to compute event payloads. *)
let program variant : (string * (machine -> Event.t list)) list =
  let begin_ = ("session", fun _ -> [ Event.Session_begin "model" ]) in
  let suspend = ("suspend", fun _ -> [ Event.Os_suspend ]) in
  let skinit =
    ( "skinit",
      fun _ ->
        [
          Event.Skinit_begin "svm";
          Event.Dev_protect { addr = slb_addr; len = slb_len };
          Event.Pcr_reset;
          ext Event.Measure;
          Event.Skinit_end;
        ] )
  in
  let stub = ("stub-extend", fun _ -> [ ext Event.Stub ]) in
  let pal_read =
    ("pal-nv-read", fun _ -> [ Event.Nv_read { index = nv_index } ])
  in
  let pal_incr =
    ( "pal-counter-incr",
      fun m ->
        [
          Event.Counter_increment
            { handle = counter_handle; value = m.counter + 1 };
        ] )
  in
  let pal_write =
    ( "pal-nv-write",
      fun m -> [ Event.Nv_write { index = nv_index; counter = Some (m.nv + 1) } ]
    )
  in
  let zeroize =
    ("zeroize", fun _ -> [ Event.Zeroize { addr = slb_addr; len = slb_len } ])
  in
  let inputs = ("extend-inputs", fun _ -> [ ext Event.Input ]) in
  let outputs = ("extend-outputs", fun _ -> [ ext Event.Output ]) in
  let nonce = ("extend-nonce", fun _ -> [ ext Event.Nonce ]) in
  let cap = ("extend-cap", fun _ -> [ ext Event.Cap ]) in
  let teardown =
    ( "teardown-dev",
      fun _ -> [ Event.Dev_unprotect { addr = slb_addr; len = slb_len } ] )
  in
  let resume = ("resume", fun _ -> [ Event.Os_resume ]) in
  let end_ = ("session-end", fun _ -> [ Event.Session_end ]) in
  let pal = [ pal_read; pal_incr; pal_write ] in
  match variant with
  | Good ->
      [ begin_; suspend; skinit; stub ]
      @ pal
      @ [ zeroize; inputs; outputs; nonce; cap; teardown; resume; end_ ]
  | Resume_before_cap ->
      (* the bug: teardown + resume jump the queue; the cap lands late *)
      [ begin_; suspend; skinit; stub ]
      @ pal
      @ [ zeroize; inputs; outputs; nonce; teardown; resume; cap; end_ ]
  | Clear_dev_early ->
      let clear = ("clear-dev", fun _ -> [ Event.Dev_clear ]) in
      [ begin_; suspend; skinit; stub; clear ]
      @ pal
      @ [ zeroize; inputs; outputs; nonce; cap; resume; end_ ]
  | Skip_zeroize ->
      (* the whole cleanup block is skipped: no wipe, no DEV teardown *)
      [ begin_; suspend; skinit; stub ]
      @ pal
      @ [ inputs; outputs; nonce; cap; resume; end_ ]
  | Nv_rollback ->
      let stale =
        ( "restore-stale-nv",
          fun m ->
            (* "restore" the pre-session snapshot: one less than current *)
            [ Event.Nv_write { index = nv_index; counter = Some (m.nv - 1) } ]
        )
      in
      [ begin_; suspend; skinit; stub ]
      @ pal
      @ [ stale; zeroize; inputs; outputs; nonce; cap; teardown; resume; end_ ]
  | Launch_unsuspended ->
      [ begin_; skinit; stub ]
      @ pal
      @ [ zeroize; inputs; outputs; nonce; cap; teardown; resume; end_ ]
  | Out_of_order_extends ->
      [ begin_; suspend; skinit; stub ]
      @ pal
      @ [ zeroize; outputs; inputs; nonce; cap; teardown; resume; end_ ]

let apply m (ev : Event.t) =
  match ev with
  | Event.Dev_protect { addr; len } -> { m with dev = Some (addr, len) }
  | Event.Dev_unprotect _ | Event.Dev_clear -> { m with dev = None }
  | Event.Os_suspend -> { m with suspended = true }
  | Event.Os_resume -> { m with suspended = false }
  | Event.Counter_increment { value; _ } -> { m with counter = value }
  | Event.Nv_write { counter = Some c; _ } -> { m with nv = c }
  | _ -> m

let apply_all m evs = List.fold_left apply m evs

let initial ?(dma_probes = 2) variant =
  {
    variant;
    pc = 0;
    probes = dma_probes;
    m = { dev = None; suspended = false; counter = 7; nv = 7 };
  }

let dev_denies m ~addr ~len =
  match m.dev with
  | None -> false
  | Some (da, dl) -> addr < da + dl && da < addr + len

let transitions st =
  let prog = program st.variant in
  let session =
    match List.nth_opt prog st.pc with
    | None -> []
    | Some (label, block) ->
        let evs = block st.m in
        [ (label, evs, { st with pc = st.pc + 1; m = apply_all st.m evs }) ]
  in
  let adversary =
    if st.probes <= 0 || st.pc >= List.length prog then []
    else
      let probe write name =
        let addr = slb_addr and len = 4096 in
        let denied = dev_denies st.m ~addr ~len in
        ( name,
          [ Event.Dma_attempt { addr; len; write; denied } ],
          { st with probes = st.probes - 1 } )
      in
      [ probe false "adv-dma-read"; probe true "adv-dma-write" ]
  in
  session @ adversary

let encode st =
  Printf.sprintf "%d|%d|%s|%b|%d|%d" st.pc st.probes
    (match st.m.dev with
    | None -> "-"
    | Some (a, l) -> Printf.sprintf "%x+%x" a l)
    st.m.suspended st.m.counter st.m.nv
