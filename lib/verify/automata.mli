(** Temporal safety automata over the protocol alphabet.

    Each automaton is a small labeled transition system encoding one
    invariant of the Flicker session protocol (paper Sections 4–6). The
    same automata serve two backends: the trace-conformance checker runs
    them over recorded {!Event.t} streams, and the model checker runs
    them in lockstep with the abstract session model, so a property is
    written once and checked both dynamically and exhaustively.

    An automaton is a {e safety} property: it either accepts an event
    (possibly changing state) or rejects it with a message; there are no
    accepting states to reach. Rejection means the finite prefix seen so
    far already violates the invariant. *)

type t
(** An automaton definition (immutable; shared between runs). *)

val name : t -> string
(** Short kebab-case identifier, e.g. ["cap-before-resume"]. *)

val property : t -> string
(** One-sentence statement of the invariant. *)

val paper : t -> string
(** The paper section the invariant comes from, e.g. ["§4.3"]. *)

type instance
(** A running automaton: definition plus current state. *)

val start : t -> instance
val instance_name : instance -> string

val feed : instance -> Event.t -> (instance, string) result
(** Advance by one event. [Error msg] means the event violates the
    invariant; the instance is consumed either way (restart with
    {!start} to keep scanning past a violation). *)

val encode_state : instance -> string
(** Stable encoding of the current state, used by the model checker to
    hash the product of machine state and monitor states. *)

(** {1 The shipped invariants} *)

val cap_before_resume : t
(** PCR 17 must be extended with the cap value before the OS resumes
    after a late launch (§4.3: prevents the resumed OS from extending
    PCR 17 into a state that attests a PAL still running). *)

val dev_covers_slb : t
(** The DEV must protect the SLB window before the SKINIT measurement
    and must not be dropped until the window has been zeroized (§2.2,
    §5.1: no device may read secrets or patch measured code). *)

val zeroize_before_exit : t
(** The SLB window must be zeroized before the OS resumes (§4.3:
    no PAL secrets survive into the untrusted OS). *)

val extend_order : t
(** Session-labeled PCR 17 extends follow the discipline
    reset, measure+, stub?, inputs, outputs, nonce?, cap — with
    application ([software]) extends permitted anywhere before the cap
    (§4.2–4.3, §5.2). *)

val nv_monotonic : t
(** Monotonic counters strictly increase and 4-byte NV counter values
    strictly advance on every write — a rollback {e or} a same-value
    rewrite is the signature of a replayed blob being persisted (§4.4's
    replay protection for PAL state). *)

val fresh_nv_on_launch : t
(** A launch that re-writes an existing NV counter must read that index
    first in the same launch: no freshness check is possible without a
    fresh read, so a reseal without one cannot have compared the sealed
    blob's counter against NV (§4.4). First-time writes (provisioning)
    and out-of-launch writes are exempt. *)

val no_unchecked_dma : t
(** While a PAL session is live, no DMA may reach the SLB window
    un-denied (§2.2: the DEV is the only thing standing between devices
    and PAL secrets). *)

val suspend_before_launch : t
(** A late launch is only legal while the OS is suspended (§4.1: the
    kernel module quiesces the OS before invoking SKINIT). *)

val all : t list
(** The eight automata above, in a stable order. *)

val find : string -> t option
(** Look up a shipped automaton by {!name}. *)
