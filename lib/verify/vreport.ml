module J = Flicker_obs.Json

let tool_name = "flicker-verify"

let rule_descriptors () =
  J.List
    (List.map
       (fun a ->
         J.Obj
           [
             ("id", J.String (Automata.name a));
             ("shortDescription", J.Obj [ ("text", J.String (Automata.property a)) ]);
             ( "defaultConfiguration",
               J.Obj [ ("level", J.String "error") ] );
             ("properties", J.Obj [ ("paper", J.String (Automata.paper a)) ]);
           ])
       Automata.all)

let driver () =
  J.Obj
    [
      ( "driver",
        J.Obj [ ("name", J.String tool_name); ("rules", rule_descriptors ()) ] );
    ]

let logical_location name =
  J.List
    [
      J.Obj
        [
          ( "logicalLocations",
            J.List [ J.Obj [ ("fullyQualifiedName", J.String name) ] ] );
        ];
    ]

let conformance_run ~subject (report : Checker.report) =
  let result (v : Checker.violation) =
    J.Obj
      [
        ("ruleId", J.String v.Checker.automaton);
        ("level", J.String "error");
        ( "message",
          J.Obj
            [
              ( "text",
                J.String
                  (Printf.sprintf "%s (at event %d: %s)" v.Checker.message
                     v.Checker.event_index
                     (Event.to_string v.Checker.event)) );
            ] );
        ("locations", logical_location (subject ^ "/trace"));
      ]
  in
  J.Obj
    [
      ("tool", driver ());
      ("results", J.List (List.map result report.Checker.violations));
      ( "properties",
        J.Obj
          [
            ("mode", J.String "conformance");
            ("subject", J.String subject);
            ("events_checked", J.Int report.Checker.events_checked);
            ("violations", J.Int (List.length report.Checker.violations));
          ] );
    ]

let mc_missed_violation (r : Mc.result) ~expected_violation =
  match (r.Mc.outcome, expected_violation) with
  | Mc.Verified, true -> true (* planted bug not caught *)
  | Mc.Violation _, false -> true (* correct session flagged *)
  | Mc.Verified, false | Mc.Violation _, true -> false

let mc_run ?(adversary = Adversary.default) ?(sessions = 1) variant
    ~expected_violation (r : Mc.result) =
  let vname = Model.variant_name variant in
  let results =
    match r.Mc.outcome with
    | Mc.Verified ->
        if expected_violation then
          [
            J.Obj
              [
                ("ruleId", J.String "mc-coverage");
                ("level", J.String "error");
                ( "message",
                  J.Obj
                    [
                      ( "text",
                        J.String
                          (Printf.sprintf
                             "planted bug in variant %s was NOT caught by the \
                              model checker"
                             vname) );
                    ] );
                ("locations", logical_location (vname ^ "/model"));
              ];
          ]
        else []
    | Mc.Violation cex ->
        [
          J.Obj
            [
              ("ruleId", J.String cex.Mc.automaton);
              (* catching a planted bug is the expected outcome *)
              ( "level",
                J.String (if expected_violation then "note" else "error") );
              ( "message",
                J.Obj
                  [
                    ( "text",
                      J.String
                        (Printf.sprintf "%s (counterexample: %d steps, last \
                                         event %s)"
                           cex.Mc.message
                           (List.length cex.Mc.steps)
                           (Event.to_string cex.Mc.event)) );
                  ] );
              ("locations", logical_location (vname ^ "/model"));
            ];
        ]
  in
  let cex_len =
    match r.Mc.outcome with
    | Mc.Violation cex -> List.length cex.Mc.steps
    | Mc.Verified -> 0
  in
  J.Obj
    [
      ("tool", driver ());
      ("results", J.List results);
      ( "properties",
        J.Obj
          [
            ("mode", J.String "model-check");
            ("variant", J.String vname);
            ("adversary", J.String (Adversary.name adversary));
            ("sessions", J.Int sessions);
            ("por", J.Bool r.Mc.stats.Mc.por);
            ("expected_violation", J.Bool expected_violation);
            ( "violation_found",
              J.Bool (match r.Mc.outcome with Mc.Violation _ -> true | _ -> false)
            );
            ("missed", J.Bool (mc_missed_violation r ~expected_violation));
            ("counterexample_steps", J.Int cex_len);
            ("states", J.Int r.Mc.stats.Mc.states);
            ("transitions", J.Int r.Mc.stats.Mc.transitions);
            ("depth", J.Int r.Mc.stats.Mc.depth);
            ("truncated", J.Bool r.Mc.stats.Mc.truncated);
            ("peak_queue", J.Int r.Mc.stats.Mc.peak_queue);
            ("ample_states", J.Int r.Mc.stats.Mc.ample);
          ] );
    ]

let document runs =
  J.Obj [ ("version", J.String "2.1.0"); ("runs", J.List runs) ]
