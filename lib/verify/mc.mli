(** Explicit-state model checker for the session protocol.

    Explores every interleaving of the abstract session program and the
    adversary ({!Model.transitions}) with the protocol automata running
    in lockstep, deduplicating on the hash of (model state × monitor
    states). Breadth-first order means the first violation found has a
    minimal-length counterexample. *)

type step = { action : string; events : Event.t list }

type counterexample = {
  steps : step list;  (** from the initial state to the violation *)
  automaton : string;
  property : string;
  paper : string;
  event : Event.t;  (** the event inside the last step that violated *)
  message : string;
}

type stats = {
  states : int;  (** distinct states expanded *)
  transitions : int;  (** transitions taken (including into dedup hits) *)
  depth : int;  (** deepest step count reached *)
  truncated : bool;  (** a budget was exhausted before the frontier *)
}

type outcome = Verified | Violation of counterexample
type result = { outcome : outcome; stats : stats }

val run :
  ?automata:Automata.t list ->
  ?max_states:int ->
  ?max_depth:int ->
  ?dma_probes:int ->
  Model.variant ->
  result
(** Check one session variant. Defaults: all automata, 20 000 states,
    depth 64, two adversary DMA probes. [Verified] with
    [stats.truncated = false] means the full product space was explored
    with no automaton rejecting. *)

val pp_counterexample : Format.formatter -> counterexample -> unit
