(** Explicit-state model checker for the session protocol.

    Breadth-first exploration of {!Model} states (session program ×
    adversary interleavings × machine), running every automaton in
    {!Automata.all} in lockstep and stopping at the first rejection.
    States are deduplicated on the hash of (model state × monitor
    states) at enqueue time, so a state reachable along many commuting
    interleavings is queued exactly once. BFS order means a reported
    counterexample is a {e minimal} violating trace.

    By default the search applies a partial-order reduction: when every
    adversary action fireable from a state (now or after adversary-only
    moves — the enabling closure) is invisible to all automata and
    footprint-independent of the session's next block, only the session
    transition is explored. Each postponed adversary action still fires
    later with identical events, so verdicts and minimal counterexample
    lengths are preserved while commuting interleavings collapse. Pass
    [~por:false] to force the full interleaving product (the [--no-por]
    escape hatch; the QCheck suite asserts both modes agree). *)

type step = { action : string; events : Event.t list }

type counterexample = {
  steps : step list;  (** from the initial state to the violation *)
  automaton : string;
  property : string;
  paper : string;
  event : Event.t;  (** the event inside the last step that violated *)
  message : string;
}

type stats = {
  states : int;  (** distinct states expanded *)
  transitions : int;  (** transitions taken (including into dedup hits) *)
  depth : int;  (** deepest step count reached *)
  truncated : bool;
      (** true only when a budget actually cut exploration off: the
          state cap was hit, or a depth-capped node still had
          unexplored successors *)
  peak_queue : int;  (** high-water mark of the BFS frontier *)
  ample : int;  (** states where the reduction pruned the adversary *)
  por : bool;  (** whether the reduction was enabled for this run *)
}

type outcome = Verified | Violation of counterexample
type result = { outcome : outcome; stats : stats }

val run :
  ?automata:Automata.t list ->
  ?max_states:int ->
  ?max_depth:int ->
  ?dma_probes:int ->
  ?adversary:Adversary.config ->
  ?sessions:int ->
  ?por:bool ->
  Model.variant ->
  result
(** Check one session variant. [adversary] / [sessions] / [dma_probes]
    are forwarded to {!Model.initial}; [por] (default true) enables the
    partial-order reduction. Defaults: all automata, 50 000 states,
    depth 96. [Verified] with [stats.truncated = false] means the full
    (reduced) product space was explored with no automaton rejecting. *)

val pp_counterexample : Format.formatter -> counterexample -> unit
