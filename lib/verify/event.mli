(** The protocol event alphabet.

    Every security-relevant state change in the simulator — late launch,
    DEV updates, PCR extends, NV traffic, OS suspend/resume, DMA
    attempts, memory zeroization — is emitted as an instant trace event
    under the ["protocol"] category (see {!Flicker_hw.Machine.protocol_event}).
    This module gives those raw tracer records a typed alphabet that both
    verification layers consume: the trace-conformance checker parses
    recorded traces into it, and the model checker generates it directly
    from the abstract session model. *)

(** How a PCR extend is labeled by its call site. The Flicker session
    discipline (paper Sections 4–5) extends PCR 17 in a fixed order:
    the SKINIT measurement ([Measure], hardware-initiated), optionally
    the untrusted stub ([Stub]), then inputs, outputs, an optional
    nonce, and finally the cap that closes the session. [Software] is
    any extend outside the session discipline (PAL application code,
    tests); [Other s] preserves unknown labels. *)
type pcr_kind =
  | Measure
  | Stub
  | Input
  | Output
  | Nonce
  | Cap
  | Software
  | Other of string

val pcr_kind_of_string : string -> pcr_kind
val pcr_kind_to_string : pcr_kind -> string

type t =
  | Session_begin of string  (** PAL name; emitted by [Session.run] *)
  | Session_end
  | Os_suspend
  | Os_resume
  | Skinit_begin of string  (** launch technology: ["svm"] or ["txt"] *)
  | Skinit_end
  | Dev_protect of { addr : int; len : int }
  | Dev_unprotect of { addr : int; len : int }
  | Dev_clear
  | Pcr_reset  (** dynamic reset of the DRTM PCRs at late launch *)
  | Pcr_reboot
  | Pcr_extend of { index : int; kind : pcr_kind }
  | Nv_read of { index : int }
  | Nv_write of { index : int; counter : int option }
      (** [counter] is decoded when the payload is a 4-byte counter *)
  | Counter_increment of { handle : int; value : int }
  | Zeroize of { addr : int; len : int }
  | Dma_attempt of { addr : int; len : int; write : bool; denied : bool }
  | Replay_record of { counter : int }
      (** the adversary copies the sealed blob / NV snapshot currently at
          rest (its bound counter value) — pure observation *)
  | Replay_inject of { counter : int }
      (** the adversary re-presents a previously recorded blob in place
          of the current one *)
  | Os_inject of { what : string }
      (** a corrupt-OS manipulation of the input/output messages crossing
          the untrusted OS (["drop-msg"], ["dup-msg"], ["swap-msg"]) —
          invisible to the lifecycle automata by design: message
          integrity is attested via PCR 17 hashes, not lifecycle order *)

val to_string : t -> string
(** Compact one-line rendering used in counterexample traces. *)

val of_tracer_event : Flicker_obs.Tracer.event -> t option
(** Parse one tracer record. Returns [None] for events outside the
    ["protocol"] category and for protocol events with missing or
    malformed arguments (the checker treats those as unobserved rather
    than failing). *)

val of_trace : Flicker_obs.Tracer.event list -> t list
(** [of_trace events] keeps the relative order of the parseable
    protocol events. *)
