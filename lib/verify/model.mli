(** Abstract session model for the model checker.

    A small-step composition of three components, each abstracted to
    just the state the protocol automata observe:

    - the {e session program}: the fixed sequence of protocol actions a
      Flicker session performs (suspend, late launch, PAL work, zeroize,
      extends, resume), as atomic blocks — SKINIT's protect + reset +
      measure is one hardware instruction and cannot be interleaved.
      With [sessions > 1] the program runs back-to-back sessions over
      the same persistent NV state, which is what gives the replay
      adversary something to replay;
    - the {e machine}: DEV coverage, OS suspension, the monotonic
      counter, NV counter, sealed-blob binding and the adversary's
      recorded snapshot (enough to compute whether a DMA is denied and
      what a counter write contains);
    - the {e adversary}: an {!Adversary.config} of budgeted models
      (DMA probes, platform resets, NV/blob replay, corrupt-OS message
      tampering), schedulable between any two session blocks.

    Variants plant specific protocol bugs so the model checker can be
    shown to catch real violations, not just bless correct code.

    Every transition also carries a {!footprint} — the machine variables
    it reads and writes, and whether any automaton can observe its
    events — which is what the model checker's partial-order reduction
    uses to decide which interleavings commute. *)

type variant =
  | Good  (** the shipped session discipline; must verify *)
  | Resume_before_cap
      (** resumes the OS before extending the cap — breaks
          [cap-before-resume] *)
  | Clear_dev_early
      (** clears the DEV right after PAL work, before zeroize — breaks
          [dev-covers-slb] and opens a DMA window *)
  | Skip_zeroize
      (** skips the cleanup wipe — breaks [zeroize-before-exit] *)
  | Nv_rollback
      (** rewrites the NV counter from a stale snapshot — breaks
          [nv-monotonic] *)
  | Launch_unsuspended
      (** invokes SKINIT without suspending the OS — breaks
          [suspend-before-launch] *)
  | Out_of_order_extends
      (** extends outputs before inputs — breaks [extend-order] *)
  | Reseal_without_counter_check
      (** the PAL reseals its state with the {e blob's} counter + 1,
          never comparing it against NV — only the replay adversary
          re-presenting a stale blob across two sessions exposes it
          (breaks [nv-monotonic]'s no-rewrite clause, §4.4) *)
  | Trust_state_across_reset
      (** after a platform reset the session keeps executing where it
          left off, as if volatile trust state survived the power
          cycle — only the reset adversary exposes it (the post-reset
          extend lands outside any launch, breaking [extend-order]) *)

val variant_name : variant -> string
val variant_of_name : string -> variant option
val all_variants : variant list

val broken_variants : variant list
(** Every variant except [Good]. *)

val requires : variant -> Adversary.kind option
(** The adversary model a planted bug needs before it manifests;
    [None] for bugs in the session's own ordering (any adversary, or
    none, exposes those). *)

val default_sessions : variant -> int
(** Sessions the variant is meant to be checked with: 2 where replay
    matters, 1 otherwise. *)

val intended_adversary : variant -> Adversary.config * int
(** The (adversary, sessions) pair the variant is designed to be
    checked under: the minimal configuration that exposes its bug, or,
    for [Good], all four models composed over two sessions. *)

type state

val initial :
  ?adversary:Adversary.config -> ?sessions:int -> ?dma_probes:int ->
  variant -> state
(** [adversary] defaults to {!Adversary.default} (DMA only, two
    probes); [dma_probes] is the PR-4 compatibility knob and is ignored
    when [adversary] is given. [sessions] defaults to
    {!default_sessions}. *)

type footprint
(** Read/write sets over machine variables plus event visibility. *)

val independent : footprint -> footprint -> bool
(** No write-write or write-read overlap: the transitions commute. *)

val fp_visible : footprint -> bool
(** Whether any automaton could observe the transition's events. *)

type source = Session | Attack of Adversary.effect

type trans = {
  label : string;
  events : Event.t list;
  succ : state;
  source : source;
  fp : footprint;
}

val transitions : state -> trans list
(** Enabled actions from [state]; empty means the run is complete. At
    most one [Session] transition is ever enabled (the program is
    deterministic). *)

val postponable : state -> footprint list
(** Footprints of every adversary effect fireable from [state] now or
    after adversary-only sequences (the enabling closure). The ample-set
    selector may explore only the session transition iff all of these
    are invisible and independent of it. *)

val encode : state -> string
(** Stable state hash key (the monitors are hashed separately by the
    model checker). *)
