(** Abstract session model for the model checker.

    A small-step composition of three components, each abstracted to
    just the state the protocol automata observe:

    - the {e session program}: the fixed sequence of protocol actions a
      Flicker session performs (suspend, late launch, PAL work, zeroize,
      extends, resume), as atomic blocks — SKINIT's protect + reset +
      measure is one hardware instruction and cannot be interleaved;
    - the {e machine}: DEV coverage, OS suspension, the monotonic
      counter and NV counter values (enough to compute whether a DMA is
      denied and what a counter write contains);
    - the {e adversary}: a budget of DMA probes against the SLB window
      (and, for replay, stale NV snapshots), schedulable between any two
      session blocks.

    Variants plant specific protocol bugs so the model checker can be
    shown to catch real violations, not just bless correct code. *)

type variant =
  | Good  (** the shipped session discipline; must verify *)
  | Resume_before_cap
      (** resumes the OS before extending the cap — breaks
          [cap-before-resume] *)
  | Clear_dev_early
      (** clears the DEV right after PAL work, before zeroize — breaks
          [dev-covers-slb] and opens a DMA window *)
  | Skip_zeroize
      (** skips the cleanup wipe — breaks [zeroize-before-exit] *)
  | Nv_rollback
      (** rewrites the NV counter from a stale snapshot — breaks
          [nv-monotonic] *)
  | Launch_unsuspended
      (** invokes SKINIT without suspending the OS — breaks
          [suspend-before-launch] *)
  | Out_of_order_extends
      (** extends outputs before inputs — breaks [extend-order] *)

val variant_name : variant -> string
val variant_of_name : string -> variant option
val all_variants : variant list
val broken_variants : variant list
(** Every variant except [Good]. *)

type state

val initial : ?dma_probes:int -> variant -> state
(** [dma_probes] (default 2) is the adversary's interleaving budget. *)

val transitions : state -> (string * Event.t list * state) list
(** Enabled actions from [state]: an action label (for counterexample
    traces), the protocol events the action emits, and the successor.
    The empty list means the run is complete. *)

val encode : state -> string
(** Stable state hash key (the monitors are hashed separately by the
    model checker). *)
