(** Pluggable adversary models for the model checker.

    PR 4's checker hard-coded one adversary: a device firing DMA probes
    at the SLB window. This module generalizes it to four budgeted
    models, schedulable between any two session blocks (drawn from the
    attacker models of Bursuc, Johansen & Xu, "Automated verification of
    dynamic root of trust protocols"):

    - {b Dma}: a malicious device probing the SLB window (read and
      write) over the bus; the DEV decides whether the probe is denied.
    - {b Reset}: a platform power cycle mid-protocol. Volatile machine
      state — DEV coverage, OS suspension, RAM — is lost; NV storage and
      monotonic counters persist; the PCRs reboot.
    - {b Replay}: corrupt OS software that records the sealed blob / NV
      snapshot at rest during one session and re-presents it to a later
      session (requires the two-session model).
    - {b Corrupt_os}: a corrupt-OS message injector that drops,
      duplicates or swaps the input/output messages crossing the
      untrusted OS, and forges software PCR-17 extends from OS context.

    The adversary module is deliberately ignorant of the machine
    representation: it sees a {!view}, emits protocol {!Event.t}s, and
    names a machine-level {!effect} the {!Model} applies. *)

type kind = Dma | Reset | Replay | Corrupt_os

val all_kinds : kind list
val kind_name : kind -> string
(** ["dma"], ["reset"], ["replay"], ["corrupt-os"]. *)

val kind_of_name : string -> kind option

val kind_doc : kind -> string * string * string
(** [(capability, events injected, which planted bug it catches)] — the
    adversary-model table rendered in the README and CLI docs. *)

type config = {
  kinds : kind list;  (** active models; composable *)
  dma_probes : int;
  resets : int;
  replay_records : int;
  replay_injects : int;
  os_injections : int;
}

val default : config
(** PR-4 behavior: DMA only, two probes. *)

val of_kinds : kind list -> config
(** Default budgets with the given models active. *)

val none : config
(** No adversary at all: pure session exploration. *)

val name : config -> string
(** ["dma"], ["dma+replay"], ... ["none"]. *)

val active : config -> kind -> bool

type budgets = {
  probes : int;
  resets : int;
  records : int;
  injects : int;
  os_injs : int;
}
(** Remaining budgets — the dynamic adversary state carried in each
    model-checker state (and its dedup key). *)

val budgets_of : config -> budgets
val encode_budgets : budgets -> string

type view = {
  dev_up : bool;
  suspended : bool;
  at_end : bool;
  blob : int;
  recorded : int option;
  slb_addr : int;
  probe_len : int;
  denies : bool;
}

type effect = Spend_probe | Do_reset | Do_record | Do_inject | Spend_os

type action = {
  act_label : string;
  act_events : Event.t list;
  act_effect : effect;
}

val spend : budgets -> effect -> budgets

val actions : budgets -> view -> action list
(** Every adversary action enabled right now. *)

val potential : budgets -> view -> effect list
(** Effects fireable now {e or} after adversary-only sequences from
    here (the enabling closure: a pending record can enable an inject).
    The partial-order reduction must consider all of these before
    postponing the adversary. *)
