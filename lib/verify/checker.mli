(** Trace conformance: run the protocol automata over recorded event
    streams.

    This is the dynamic half of the verifier — where the model checker
    ({!Mc}) explores every interleaving of an abstract session, the
    checker validates what one concrete simulator run actually did, by
    replaying the ["protocol"] instants a {!Flicker_obs.Tracer} recorded
    through every automaton in {!Automata.all}. *)

type violation = {
  automaton : string;
  property : string;
  paper : string;
  event_index : int;  (** position in the checked event list *)
  event : Event.t;  (** the event that broke the invariant *)
  message : string;
  window : Event.t list;
      (** up to the last 8 events ending at the violating one — enough
          context to read the counterexample without the full trace *)
}

type report = {
  events_checked : int;
  violations : violation list;  (** in trace order *)
}

val check : ?automata:Automata.t list -> Event.t list -> report
(** Run every automaton (default {!Automata.all}) over the events. A
    violated automaton is restarted from its initial state so one broken
    session does not mask problems later in the trace. *)

val check_trace : ?automata:Automata.t list -> Flicker_obs.Tracer.event list -> report
(** {!check} over the parseable protocol events of raw tracer records. *)

val check_tracer : ?automata:Automata.t list -> Flicker_obs.Tracer.t -> report
(** {!check_trace} over everything the tracer currently retains. *)

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string
