open Flicker_crypto
module Tpm = Flicker_tpm.Tpm
module Tpm_types = Flicker_tpm.Tpm_types

type setup_output = { public_key : Rsa.public; sealed_private : string }

let with_tpm env f =
  match Mod_tpm_driver.claim env.Pal_env.tpm_driver with
  | Error e -> Error e
  | Ok () ->
      (* release also on exception, or a PAL fault wedges the driver *)
      Fun.protect
        ~finally:(fun () -> Mod_tpm_driver.release env.Pal_env.tpm_driver)
        (fun () -> f (Pal_env.tpm env))

let setup env ~key_bits =
  with_tpm env (fun tpm ->
      (* Seed the PAL's keygen from the TPM hardware RNG, as the paper's
         implementation does (the 1.3 ms GetRandom in Section 7.4.1). *)
      let seed = Mod_tpm_utils.get_random tpm 128 in
      Prng.reseed env.Pal_env.rng seed;
      let key = Mod_crypto.rsa_generate env.Pal_env.machine env.Pal_env.rng ~bits:key_bits in
      match Mod_tpm_utils.pcr_read tpm 17 with
      | Error e -> Error (Tpm_types.error_to_string e)
      | Ok pcr17 -> (
          match
            Mod_tpm_utils.seal_to_pcr17 tpm ~rng:env.Pal_env.rng ~pcr17
              (Rsa.private_to_string key)
          with
          | Error e -> Error (Tpm_types.error_to_string e)
          | Ok sealed_private -> Ok { public_key = key.Rsa.pub; sealed_private }))

let recover env ~sealed_private =
  with_tpm env (fun tpm ->
      match Mod_tpm_utils.unseal tpm ~rng:env.Pal_env.rng sealed_private with
      | Error e -> Error (Tpm_types.error_to_string e)
      | Ok raw -> (
          match Rsa.private_of_string raw with
          | key -> Ok key
          | exception Invalid_argument msg -> Error ("corrupt private key: " ^ msg)))

let field s = Util.be32_of_int (String.length s) ^ s

let encode_setup_output out =
  field (Rsa.public_to_string out.public_key) ^ field out.sealed_private

let decode_setup_output s =
  let read off =
    if off + 4 > String.length s then Error "truncated"
    else begin
      let len = Util.int_of_be32 s off in
      if off + 4 + len > String.length s then Error "truncated"
      else Ok (String.sub s (off + 4) len, off + 4 + len)
    end
  in
  match read 0 with
  | Error e -> Error e
  | Ok (pub_raw, off) -> (
      match read off with
      | Error e -> Error e
      | Ok (sealed_private, _) -> (
          match Rsa.public_of_string pub_raw with
          | public_key -> Ok { public_key; sealed_private }
          | exception Invalid_argument msg -> Error msg))
