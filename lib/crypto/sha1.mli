(** SHA-1 (FIPS 180-1). The TPM v1.2 specification uses SHA-1 for all PCR
    extends and measurements, so this is the measurement hash throughout
    the simulator. *)

type ctx

val digest_size : int
(** 20 bytes. *)

val init : unit -> ctx

val reset : ctx -> unit
(** Return the context to its initial state so it can absorb a fresh
    message, clearing the finalized flag. *)

val update : ctx -> string -> unit
(** @raise Invalid_argument on a context that was already finalized. *)

val finalize : ctx -> string
(** Returns the 20-byte digest and marks the context finalized: any
    further [update] or [finalize] raises [Invalid_argument] until the
    context is [reset]. *)

val digest : string -> string
(** One-shot hash (reuses one process-wide scratch context; the
    simulator is single-domain). *)

val bytes_hashed : unit -> int
(** Message bytes absorbed through [update] since process start —
    host-side instrumentation for the measurement-cache benchmarks
    (padding bytes are not counted). *)

val hex : string -> string
(** [hex s] is [Util.to_hex (digest s)]. *)
