let digest_size = 32
let mask32 = 0xFFFFFFFF

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array; (* 8 state words *)
  mutable total : int;
  buf : Bytes.t;
  mutable buf_len : int;
  w : int array;
  mutable finalized : bool;
}

let iv =
  [|
    0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
    0x1f83d9ab; 0x5be0cd19;
  |]

let init () =
  {
    h = Array.copy iv;
    total = 0;
    buf = Bytes.create 64;
    buf_len = 0;
    w = Array.make 64 0;
    finalized = false;
  }

let reset ctx =
  Array.blit iv 0 ctx.h 0 8;
  ctx.total <- 0;
  ctx.buf_len <- 0;
  ctx.finalized <- false

let rotr32 v n = ((v lsr n) lor (v lsl (32 - n))) land mask32
let shr v n = v lsr n

let compress ctx block =
  let w = ctx.w in
  for t = 0 to 15 do
    let i = 4 * t in
    w.(t) <-
      (Char.code (Bytes.get block i) lsl 24)
      lor (Char.code (Bytes.get block (i + 1)) lsl 16)
      lor (Char.code (Bytes.get block (i + 2)) lsl 8)
      lor Char.code (Bytes.get block (i + 3))
  done;
  for t = 16 to 63 do
    let s0 = rotr32 w.(t - 15) 7 lxor rotr32 w.(t - 15) 18 lxor shr w.(t - 15) 3 in
    let s1 = rotr32 w.(t - 2) 17 lxor rotr32 w.(t - 2) 19 lxor shr w.(t - 2) 10 in
    w.(t) <- (w.(t - 16) + s0 + w.(t - 7) + s1) land mask32
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr32 !e 6 lxor rotr32 !e 11 lxor rotr32 !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) land mask32 in
    let temp1 = (!hh + s1 + ch + k.(t) + w.(t)) land mask32 in
    let s0 = rotr32 !a 2 lxor rotr32 !a 13 lxor rotr32 !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let temp2 = (s0 + maj) land mask32 in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + temp1) land mask32;
    d := !c;
    c := !b;
    b := !a;
    a := (temp1 + temp2) land mask32
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32;
  h.(5) <- (h.(5) + !f) land mask32;
  h.(6) <- (h.(6) + !g) land mask32;
  h.(7) <- (h.(7) + !hh) land mask32

(* Raw absorb loop shared by [update] and the padding write in
   [finalize], which must bypass the finalized check. *)
let absorb ctx s =
  let len = String.length s in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  if ctx.buf_len > 0 then begin
    let take = min (64 - ctx.buf_len) len in
    Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf;
      ctx.buf_len <- 0
    end
  end;
  while len - !pos >= 64 do
    Bytes.blit_string s !pos ctx.buf 0 64;
    compress ctx ctx.buf;
    pos := !pos + 64
  done;
  if !pos < len then begin
    Bytes.blit_string s !pos ctx.buf 0 (len - !pos);
    ctx.buf_len <- len - !pos
  end

let update ctx s =
  if ctx.finalized then invalid_arg "Sha256.update: context already finalized";
  absorb ctx s

let finalize ctx =
  if ctx.finalized then invalid_arg "Sha256.finalize: context already finalized";
  let bit_len = ctx.total * 8 in
  let pad_len =
    let rem = (ctx.total + 1) mod 64 in
    if rem <= 56 then 56 - rem else 120 - rem
  in
  let padding = Bytes.make (1 + pad_len + 8) '\000' in
  Bytes.set padding 0 '\x80';
  for i = 0 to 7 do
    Bytes.set padding (1 + pad_len + i) (Char.chr ((bit_len lsr (8 * (7 - i))) land 0xff))
  done;
  absorb ctx (Bytes.unsafe_to_string padding);
  ctx.finalized <- true;
  let out = Bytes.create 32 in
  Array.iteri
    (fun i h ->
      for j = 0 to 3 do
        Bytes.set out ((4 * i) + j) (Char.chr ((h lsr (8 * (3 - j))) land 0xff))
      done)
    ctx.h;
  Bytes.unsafe_to_string out

(* Domain-local one-shot scratch context; see Sha1.scratch_key for the
   rationale ([digest] never re-enters itself, and each domain owns its
   own context so concurrent domains cannot interleave absorptions). *)
let scratch_key = Domain.DLS.new_key init

let digest s =
  let scratch = Domain.DLS.get scratch_key in
  reset scratch;
  update scratch s;
  finalize scratch

let hex s = Util.to_hex (digest s)
