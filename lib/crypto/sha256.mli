(** SHA-256 (FIPS 180-2). *)

type ctx

val digest_size : int
(** 32 bytes. *)

val init : unit -> ctx

val reset : ctx -> unit
(** Return the context to its initial state, clearing the finalized flag. *)

val update : ctx -> string -> unit
(** @raise Invalid_argument on a context that was already finalized. *)

val finalize : ctx -> string
(** Returns the 32-byte digest and marks the context finalized: any
    further [update] or [finalize] raises [Invalid_argument] until the
    context is [reset]. *)

val digest : string -> string
val hex : string -> string
