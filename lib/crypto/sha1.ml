let digest_size = 20
let mask32 = 0xFFFFFFFF

type ctx = {
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  mutable total : int; (* bytes processed so far *)
  buf : Bytes.t; (* partial block, 64 bytes *)
  mutable buf_len : int;
  w : int array; (* message schedule scratch *)
  mutable finalized : bool;
}

(* Host-side instrumentation: message bytes fed through [update] since
   process start (padding excluded). The measurement-memoization bench
   reads the delta around a session to prove the cache cut real hashing
   work without touching any simulated metric. Atomic, because sharded
   fleets hash from several domains at once and a plain [ref] would
   drop increments under contention. *)
let bytes_hashed_total = Atomic.make 0
let bytes_hashed () = Atomic.get bytes_hashed_total

let init () =
  {
    h0 = 0x67452301;
    h1 = 0xEFCDAB89;
    h2 = 0x98BADCFE;
    h3 = 0x10325476;
    h4 = 0xC3D2E1F0;
    total = 0;
    buf = Bytes.create 64;
    buf_len = 0;
    w = Array.make 80 0;
    finalized = false;
  }

let reset ctx =
  ctx.h0 <- 0x67452301;
  ctx.h1 <- 0xEFCDAB89;
  ctx.h2 <- 0x98BADCFE;
  ctx.h3 <- 0x10325476;
  ctx.h4 <- 0xC3D2E1F0;
  ctx.total <- 0;
  ctx.buf_len <- 0;
  ctx.finalized <- false

let rotl32 v n = ((v lsl n) lor (v lsr (32 - n))) land mask32

let compress ctx block off =
  let w = ctx.w in
  for t = 0 to 15 do
    let i = off + (4 * t) in
    w.(t) <-
      (Char.code (Bytes.get block i) lsl 24)
      lor (Char.code (Bytes.get block (i + 1)) lsl 16)
      lor (Char.code (Bytes.get block (i + 2)) lsl 8)
      lor Char.code (Bytes.get block (i + 3))
  done;
  for t = 16 to 79 do
    w.(t) <- rotl32 (w.(t - 3) lxor w.(t - 8) lxor w.(t - 14) lxor w.(t - 16)) 1
  done;
  let a = ref ctx.h0 and b = ref ctx.h1 and c = ref ctx.h2 in
  let d = ref ctx.h3 and e = ref ctx.h4 in
  for t = 0 to 79 do
    let f, k =
      if t < 20 then ((!b land !c) lor (lnot !b land !d) land mask32, 0x5A827999)
      else if t < 40 then (!b lxor !c lxor !d, 0x6ED9EBA1)
      else if t < 60 then ((!b land !c) lor (!b land !d) lor (!c land !d), 0x8F1BBCDC)
      else (!b lxor !c lxor !d, 0xCA62C1D6)
    in
    let temp = (rotl32 !a 5 + (f land mask32) + !e + k + w.(t)) land mask32 in
    e := !d;
    d := !c;
    c := rotl32 !b 30;
    b := !a;
    a := temp
  done;
  ctx.h0 <- (ctx.h0 + !a) land mask32;
  ctx.h1 <- (ctx.h1 + !b) land mask32;
  ctx.h2 <- (ctx.h2 + !c) land mask32;
  ctx.h3 <- (ctx.h3 + !d) land mask32;
  ctx.h4 <- (ctx.h4 + !e) land mask32

(* The raw absorb loop, shared by the public [update] and the padding
   write inside [finalize] (which must bypass the finalized check and
   the instrumentation counter). *)
let absorb ctx s =
  let len = String.length s in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  (* top up a partial block first *)
  if ctx.buf_len > 0 then begin
    let take = min (64 - ctx.buf_len) len in
    Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while len - !pos >= 64 do
    Bytes.blit_string s !pos ctx.buf 0 64;
    compress ctx ctx.buf 0;
    pos := !pos + 64
  done;
  if !pos < len then begin
    Bytes.blit_string s !pos ctx.buf 0 (len - !pos);
    ctx.buf_len <- len - !pos
  end

let update ctx s =
  if ctx.finalized then invalid_arg "Sha1.update: context already finalized";
  ignore (Atomic.fetch_and_add bytes_hashed_total (String.length s));
  absorb ctx s

let finalize ctx =
  if ctx.finalized then invalid_arg "Sha1.finalize: context already finalized";
  let bit_len = ctx.total * 8 in
  let pad_len =
    let rem = (ctx.total + 1) mod 64 in
    if rem <= 56 then 56 - rem else 120 - rem
  in
  let padding = Bytes.make (1 + pad_len + 8) '\000' in
  Bytes.set padding 0 '\x80';
  for i = 0 to 7 do
    Bytes.set padding (1 + pad_len + i) (Char.chr ((bit_len lsr (8 * (7 - i))) land 0xff))
  done;
  absorb ctx (Bytes.unsafe_to_string padding);
  assert (ctx.buf_len = 0);
  ctx.finalized <- true;
  let out = Bytes.create 20 in
  List.iteri
    (fun i h ->
      for j = 0 to 3 do
        Bytes.set out ((4 * i) + j) (Char.chr ((h lsr (8 * (3 - j))) land 0xff))
      done)
    [ ctx.h0; ctx.h1; ctx.h2; ctx.h3; ctx.h4 ];
  Bytes.unsafe_to_string out

(* One scratch context per domain for one-shot digests: [digest] runs to
   completion before returning and never re-enters itself, so reusing a
   domain-local context is safe — including under the sharded fleet,
   where several domains digest concurrently — and saves a 64-byte
   buffer + 80-word schedule allocation per call on the measurement hot
   path. A single shared context here was the PR-6 latent bug: two
   domains interleaving [reset]/[update]/[finalize] would mix messages. *)
let scratch_key = Domain.DLS.new_key init

let digest s =
  let scratch = Domain.DLS.get scratch_key in
  reset scratch;
  update scratch s;
  finalize scratch

let hex s = Util.to_hex (digest s)
