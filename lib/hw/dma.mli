(** DMA-capable devices.

    Flicker's adversary model includes malicious expansion hardware (e.g.,
    a compromised Ethernet card on the PCI bus) that can issue DMA to any
    physical address. Every access is checked against the DEV; blocked
    attempts are recorded so tests can assert both that attacks fail during
    a session and that the log shows they were attempted. *)

type t

type attempt = {
  at : float;
  device : string;
  addr : int;
  len : int;
  write : bool;
  blocked : bool;
}

val create : Machine.t -> name:string -> t
val name : t -> string

val read : t -> addr:int -> len:int -> (string, string) result
(** [Error reason] when the DEV blocks the access. *)

val write : t -> addr:int -> data:string -> (unit, string) result
val attempts : t -> attempt list
(** All accesses this device issued, oldest first. *)

val fire_storm : Machine.t -> ?focus:int * int -> unit -> unit
(** Consult the machine's fault injector and, if a storm fires, issue a
    burst of adversarial DMA writes from a ["chaos-dma"] device through
    the normal checked path (each attempt is logged and traced; the DEV
    denies any that touch protected pages). Even-numbered writes aim
    inside [focus] ([base, len] — typically the live SLB window) so every
    storm exercises the DEV, odd ones hit arbitrary addresses. No-op
    without an injector. *)
