(** Calibrated latency model.

    Every latency here is calibrated against a measurement in the paper's
    Section 7 (the HP dc5750 testbed: 2.2 GHz Athlon64 X2, Broadcom
    BCM0102 TPM). The Infineon profile uses the alternative TPM latencies
    the paper quotes; [future] reflects the up-to-six-orders-of-magnitude
    hardware improvements proposed in the authors' concurrent ASPLOS'08
    work, scaled conservatively. *)

type tpm_profile = {
  tpm_name : string;
  quote_ms : float;  (** TPM_Quote: 972.7 ms Broadcom, 331 ms Infineon *)
  seal_ms : float;  (** TPM_Seal: 10.2 ms *)
  unseal_ms : float;  (** TPM_Unseal: 898.3 ms Broadcom, 391 ms Infineon *)
  pcr_extend_ms : float;  (** TPM_Extend: 1.2 ms *)
  pcr_read_ms : float;
  get_random_ms_per_128b : float;  (** 1.3 ms per 128 bytes *)
  nv_read_ms : float;
  nv_write_ms : float;
  counter_increment_ms : float;
  load_key_ms : float;
  skinit_base_ms : float;  (** CPU state change: < 1 ms (Table 2, 0 KB row) *)
  skinit_ms_per_kb : float;  (** SLB transfer+hash to TPM: Table 2 slope *)
}

type cpu_profile = {
  cpu_name : string;
  sha1_mb_per_ms : float;  (** calibrated so 5.06 MB hashes in 22.0 ms *)
  rsa_keygen_1024_ms : float;  (** 185.7 ms (Figure 9a) *)
  rsa_private_1024_ms : float;  (** 4.6 ms decrypt / 4.7 ms sign *)
  rsa_public_1024_ms : float;
  aes_mb_per_ms : float;
  misc_op_ms : float;  (** small fixed cost for modelled syscalls etc. *)
}

type network_profile = {
  rtt_ms : float;  (** 9.45 ms average ping, 12 hops (Section 7.1) *)
  bandwidth_kb_per_ms : float;
}

type t = {
  tpm : tpm_profile;
  cpu : cpu_profile;
  network : network_profile;
}

val broadcom : tpm_profile
val infineon : tpm_profile
val future_tpm : tpm_profile
val athlon64_x2 : cpu_profile
val paper_network : network_profile

val default : t
(** Broadcom + Athlon64 X2 + the paper's 12-hop network: the primary
    testbed of Section 7.1. *)

val with_tpm : tpm_profile -> t -> t

val skinit_ms : t -> slb_bytes:int -> float
(** Latency of the SKINIT instruction for an SLB of the given size:
    CPU state change plus the CPU-to-TPM transfer and hashing of the
    measured bytes (Table 2). *)

val sha1_ms : t -> bytes:int -> float
(** CPU-side SHA-1 over [bytes] of data. *)

val rsa_keygen_ms : t -> bits:int -> float
(** Expected keypair-generation latency; scales cubically with modulus
    size from the calibrated 1024-bit point. *)

val rsa_private_ms : t -> bits:int -> float
val rsa_public_ms : t -> bits:int -> float
val get_random_ms : t -> bytes:int -> float
(** One 128-byte block per started 128 bytes; a zero-byte request (no
    command issued) costs nothing. *)

val network_ms : t -> bytes:int -> float
(** One-way message latency: half an RTT plus serialization. *)
