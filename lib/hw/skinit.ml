exception Skinit_error of string

type launch = {
  slb_base : int;
  slb_length : int;
  entry_point : int;
  protected_base : int;
  protected_len : int;
}

let slb_window = 64 * 1024

let fail fmt = Printf.ksprintf (fun s -> raise (Skinit_error s)) fmt

let execute (m : Machine.t) ~slb_base =
  let bsp = Cpu.bsp m.cpus in
  if bsp.ring <> 0 then fail "SKINIT is privileged: caller in ring %d" bsp.ring;
  if not (Cpu.all_aps_parked m.cpus) then
    fail "SKINIT on multi-core requires all APs parked via INIT IPI";
  let hooks =
    match m.tpm_hooks with
    | Some h -> h
    | None -> fail "no TPM attached to the platform"
  in
  if slb_base < 0 || slb_base + slb_window > Memory.size m.memory then
    fail "SLB window [%#x, %#x) outside physical memory" slb_base (slb_base + slb_window);
  if slb_base mod Memory.page_size <> 0 then fail "SLB base must be page-aligned";
  let slb_length = Memory.read_u16_le m.memory slb_base in
  let entry_offset = Memory.read_u16_le m.memory (slb_base + 2) in
  if slb_length < 4 then fail "SLB header: length %d too small" slb_length;
  if entry_offset >= slb_length then
    fail "SLB header: entry point %#x beyond length %#x" entry_offset slb_length;
  (* Hardware protections, in architectural order: DMA exclusion first so
     no device can race the measurement, then interrupts and debug. All
     validation is done, so from here the launch always completes. *)
  Machine.protocol_event m "skinit.begin"
    ~args:[ ("tech", Flicker_obs.Tracer.Str "svm") ];
  Dev.protect_range m.dev ~addr:slb_base ~len:slb_window;
  bsp.interrupts_enabled <- false;
  bsp.debug_enabled <- false;
  (* The CPU transmits the SLB contents to the TPM, which resets the
     dynamic PCRs and extends PCR 17 with the measurement. *)
  let contents = Memory.read m.memory ~addr:slb_base ~len:slb_length in
  hooks.dynamic_pcr_reset ();
  hooks.measure_into_pcr17 contents;
  Machine.charge m (Timing.skinit_ms m.timing ~slb_bytes:slb_length);
  (* Enter flat 32-bit protected mode at the entry point. *)
  bsp.mode <- Cpu.Flat_protected;
  bsp.paging_enabled <- false;
  bsp.ring <- 0;
  let flat = Cpu.flat_segment (Memory.size m.memory) in
  bsp.cs <- flat;
  bsp.ds <- flat;
  bsp.ss <- flat;
  Machine.log_event m
    (Printf.sprintf "skinit: launched SLB at %#x (len=%d, entry=+%#x)" slb_base
       slb_length entry_offset);
  Machine.protocol_event m "skinit.end";
  {
    slb_base;
    slb_length;
    entry_point = slb_base + entry_offset;
    protected_base = slb_base;
    protected_len = slb_window;
  }

let teardown_dev (m : Machine.t) launch =
  Dev.unprotect_range m.dev ~addr:launch.protected_base ~len:launch.protected_len;
  Machine.log_event m "skinit: DEV protection dropped"
