type attempt = {
  at : float;
  device : string;
  addr : int;
  len : int;
  write : bool;
  blocked : bool;
}

type t = {
  machine : Machine.t;
  device_name : string;
  mutable log : attempt list; (* newest first *)
}

let create machine ~name = { machine; device_name = name; log = [] }
let name t = t.device_name

let record t ~addr ~len ~write ~blocked =
  t.log <-
    {
      at = Clock.now t.machine.Machine.clock;
      device = t.device_name;
      addr;
      len;
      write;
      blocked;
    }
    :: t.log;
  (* the attempt/denied pair the trace-conformance checker expects: every
     DMA shows up, blocked or not, with the DEV's verdict attached *)
  Machine.protocol_event t.machine "dma.attempt"
    ~args:
      [
        ("device", Flicker_obs.Tracer.Str t.device_name);
        ("addr", Flicker_obs.Tracer.Count addr);
        ("len", Flicker_obs.Tracer.Count len);
        ("write", Flicker_obs.Tracer.Flag write);
        ("denied", Flicker_obs.Tracer.Flag blocked);
      ];
  if blocked then begin
    Flicker_obs.Metrics.incr t.machine.Machine.metrics "dev.blocked_dma";
    Machine.log_event t.machine
      (Printf.sprintf "dev: blocked DMA %s by %s at %#x (%d bytes)"
         (if write then "write" else "read")
         t.device_name addr len)
  end

let read t ~addr ~len =
  let allowed = Dev.allows t.machine.Machine.dev ~addr ~len in
  record t ~addr ~len ~write:false ~blocked:(not allowed);
  if allowed then Ok (Memory.read t.machine.Machine.memory ~addr ~len)
  else Error "DEV: DMA read blocked"

let write t ~addr ~data =
  let len = String.length data in
  let allowed = Dev.allows t.machine.Machine.dev ~addr ~len in
  record t ~addr ~len ~write:true ~blocked:(not allowed);
  if allowed then begin
    Memory.write t.machine.Machine.memory ~addr data;
    Ok ()
  end
  else Error "DEV: DMA write blocked"

let attempts t = List.rev t.log

(* An injected DMA storm: a burst of adversarial writes from a rogue
   device, alternating between the caller's focus window (the SLB region
   a live session cares about — the DEV must deny these) and arbitrary
   physical addresses. Every attempt goes through the normal [write]
   path, so it is logged, traced, and checked against the DEV exactly
   like a real device's traffic. *)
let fire_storm machine ?focus () =
  match Machine.injector machine with
  | None -> ()
  | Some inj -> (
      let now = Clock.now machine.Machine.clock in
      match Flicker_fault.Injector.dma_storm inj ~now_ms:now with
      | None -> ()
      | Some writes ->
          Machine.fault_event machine "fault.dma_storm"
            ~args:[ ("writes", Flicker_obs.Tracer.Count writes) ];
          Flicker_obs.Metrics.incr machine.Machine.metrics "fault.dma_storms";
          let dev = create machine ~name:"chaos-dma" in
          let mem = Memory.size machine.Machine.memory in
          for i = 0 to writes - 1 do
            let len = 64 * (1 + (i mod 4)) in
            let u =
              Flicker_fault.Injector.uniform inj
                ~site:(Printf.sprintf "dma.addr.%d" i)
                ~now_ms:now
            in
            let addr =
              match focus with
              | Some (base, span) when i mod 2 = 0 ->
                  (* aim inside the window under DEV protection *)
                  base + int_of_float (u *. float_of_int (max 1 (span - len)))
              | _ -> int_of_float (u *. float_of_int (max 1 (mem - len)))
            in
            let addr = max 0 (min (mem - len) addr) in
            ignore (write dev ~addr ~data:(String.make len '\xff'))
          done)
