type change =
  | Protected of { addr : int; len : int }
  | Unprotected of { addr : int; len : int }
  | Cleared

type t = { bits : Bytes.t; pages : int; mutable notify : (change -> unit) option }

let create ~pages =
  if pages <= 0 then invalid_arg "Dev.create: need at least one page";
  { bits = Bytes.make ((pages + 7) / 8) '\000'; pages; notify = None }

let set_notify t f = t.notify <- Some f
let notice t c = match t.notify with Some f -> f c | None -> ()

let check t page =
  if page < 0 || page >= t.pages then invalid_arg "Dev: page out of range"

let set t page v =
  check t page;
  let byte = Char.code (Bytes.get t.bits (page / 8)) in
  let mask = 1 lsl (page mod 8) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.set t.bits (page / 8) (Char.chr byte)

let is_page_protected t page =
  check t page;
  Char.code (Bytes.get t.bits (page / 8)) land (1 lsl (page mod 8)) <> 0

let iter_range t ~addr ~len f =
  if len > 0 then begin
    let first, last = Memory.pages_of_range ~addr ~len in
    for page = first to min last (t.pages - 1) do
      f page
    done
  end

let protect_range t ~addr ~len =
  iter_range t ~addr ~len (fun p -> set t p true);
  if len > 0 then notice t (Protected { addr; len })

let unprotect_range t ~addr ~len =
  iter_range t ~addr ~len (fun p -> set t p false);
  if len > 0 then notice t (Unprotected { addr; len })

let clear t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  notice t Cleared

let allows t ~addr ~len =
  if len <= 0 then true
  else begin
    let first, last = Memory.pages_of_range ~addr ~len in
    (* pages beyond the bitmap are permanently protected (fail closed) *)
    let rec go p = p > last || (p < t.pages && not (is_page_protected t p) && go (p + 1)) in
    go first
  end

let protected_pages t =
  List.filter (is_page_protected t) (List.init t.pages Fun.id)
