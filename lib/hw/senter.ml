open Flicker_crypto

exception Senter_error of string

type launch = {
  mle_base : int;
  mle_length : int;
  entry_point : int;
  acm_measurement : string;
  protected_base : int;
  protected_len : int;
}

let default_acm =
  (* deterministic stand-in for the ~20 KB vendor SINIT module *)
  let buf = Buffer.create 20480 in
  Buffer.add_string buf "\x7fSINIT-ACM-v1\x00";
  let c = ref 0 in
  while Buffer.length buf < 20480 do
    Buffer.add_string buf (Sha256.digest (Printf.sprintf "sinit:%d" !c));
    incr c
  done;
  Buffer.contents buf

let fail fmt = Printf.ksprintf (fun s -> raise (Senter_error s)) fmt

let execute (m : Machine.t) ~slb_base ~acm =
  let bsp = Cpu.bsp m.cpus in
  if bsp.Cpu.ring <> 0 then fail "GETSEC[SENTER] is privileged: caller in ring %d" bsp.Cpu.ring;
  if not (Cpu.all_aps_parked m.cpus) then
    fail "SENTER requires all responding logical processors rendezvoused";
  if String.length acm = 0 then fail "no SINIT ACM provided";
  let hooks =
    match m.tpm_hooks with
    | Some h -> h
    | None -> fail "no TPM attached to the platform"
  in
  if slb_base < 0 || slb_base + Skinit.slb_window > Memory.size m.memory then
    fail "MLE window outside physical memory";
  if slb_base mod Memory.page_size <> 0 then fail "MLE base must be page-aligned";
  let mle_length = Memory.read_u16_le m.memory slb_base in
  let entry_offset = Memory.read_u16_le m.memory (slb_base + 2) in
  if mle_length < 4 then fail "MLE header: length %d too small" mle_length;
  if entry_offset >= mle_length then fail "MLE header: entry point beyond length";
  (* protections first (TXT: NoDMA / protected memory ranges); same
     protocol role as SKINIT, so the same event names *)
  Machine.protocol_event m "skinit.begin"
    ~args:[ ("tech", Flicker_obs.Tracer.Str "txt") ];
  Dev.protect_range m.dev ~addr:slb_base ~len:Skinit.slb_window;
  bsp.Cpu.interrupts_enabled <- false;
  bsp.Cpu.debug_enabled <- false;
  (* stage 1: the chipset authenticates and measures the SINIT ACM *)
  hooks.Machine.dynamic_pcr_reset ();
  hooks.Machine.measure_into_pcr17 acm;
  Machine.charge m (Timing.skinit_ms m.timing ~slb_bytes:(String.length acm));
  (* stage 2: the ACM measures and launches the MLE *)
  let mle = Memory.read m.memory ~addr:slb_base ~len:mle_length in
  hooks.Machine.measure_into_pcr17 mle;
  Machine.charge m (Timing.skinit_ms m.timing ~slb_bytes:mle_length);
  bsp.Cpu.mode <- Cpu.Flat_protected;
  bsp.Cpu.paging_enabled <- false;
  let flat = Cpu.flat_segment (Memory.size m.memory) in
  bsp.Cpu.cs <- flat;
  bsp.Cpu.ds <- flat;
  bsp.Cpu.ss <- flat;
  Machine.log_event m
    (Printf.sprintf "senter: launched MLE at %#x (len=%d) under ACM %s" slb_base
       mle_length
       (Util.to_hex (String.sub (Sha1.digest acm) 0 6)));
  Machine.protocol_event m "skinit.end";
  {
    mle_base = slb_base;
    mle_length;
    entry_point = slb_base + entry_offset;
    acm_measurement = Sha1.digest acm;
    protected_base = slb_base;
    protected_len = Skinit.slb_window;
  }

let teardown_protection (m : Machine.t) launch =
  Dev.unprotect_range m.dev ~addr:launch.protected_base ~len:launch.protected_len;
  Machine.log_event m "senter: DMA protection dropped"
