(** Device Exclusion Vector.

    AMD SVM's DEV is a bit vector over physical pages; a set bit blocks all
    DMA to that page. SKINIT sets the bits covering the 64 KB SLB region so
    that no DMA-capable device can read or tamper with the measured code
    (Section 2.4).

    Out-of-range policy: pages beyond the bitmap (i.e. beyond physical
    memory) are treated as {e permanently protected} — DMA to them is
    always denied (fail closed), and range operations silently leave them
    in that state. Per-page queries ([is_page_protected]) still raise
    [Invalid_argument] on out-of-range page numbers, since asking about a
    specific nonexistent page is a caller bug rather than a device
    access. *)

type change =
  | Protected of { addr : int; len : int }
  | Unprotected of { addr : int; len : int }
  | Cleared

type t

val create : pages:int -> t

val set_notify : t -> (change -> unit) -> unit
(** Observe range-level protection changes (the machine wires this to the
    tracer so the protocol verifier sees [Dev_protect]/[Dev_unprotect]
    events). Range operations with [len <= 0] notify nothing. *)

val protect_range : t -> addr:int -> len:int -> unit
(** Set the DEV bits for every page overlapping the byte range. Pages
    beyond the bitmap are already permanently protected, so the portion
    of the range outside coverage is a no-op. *)

val unprotect_range : t -> addr:int -> len:int -> unit
(** Clear the DEV bits for covered pages of the range. Pages beyond the
    bitmap cannot be unprotected. *)

val clear : t -> unit
val is_page_protected : t -> int -> bool
(** @raise Invalid_argument if the page is outside the bitmap. *)

val allows : t -> addr:int -> len:int -> bool
(** [true] iff no byte of the range lies in a protected page. Any byte
    beyond the bitmap's coverage makes this [false]. *)

val protected_pages : t -> int list
(** Sorted list of protected page numbers (for tests and audits). *)
