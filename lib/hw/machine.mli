(** The simulated platform: memory, DEV, CPU cores, clock, and the hooks
    through which SKINIT drives the TPM.

    The TPM itself lives in [flicker_tpm] (which depends on this library
    for the clock and timing model); the platform assembly in
    [flicker_core.Platform] wires a TPM instance into [tpm_hooks].

    Observability: every machine carries a {!Flicker_obs.Tracer} (span
    and instant events over the simulated clock, in a bounded ring
    buffer) and a {!Flicker_obs.Metrics} registry (counters and latency
    histograms) that the TPM, session, and OS layers feed. *)

type tpm_hooks = {
  dynamic_pcr_reset : unit -> unit;
      (** Reset PCRs 17–23 to zero, as the chipset does on SKINIT. *)
  measure_into_pcr17 : string -> unit;
      (** Hash the transmitted SLB bytes and extend PCR 17. *)
}

type event = { at : float; detail : string }

type t = {
  memory : Memory.t;
  dev : Dev.t;
  cpus : Cpu.t;
  clock : Clock.t;
  timing : Timing.t;
  tracer : Flicker_obs.Tracer.t;  (** bounded audit trail + spans *)
  metrics : Flicker_obs.Metrics.t;
  mutable tpm_hooks : tpm_hooks option;
  mutable injector : Flicker_fault.Injector.t option;
      (** fault injector consulted by the charge path, the TPM command
          layer, and DMA storms; [None] (the default) injects nothing *)
}

val create : ?memory_size:int -> ?cores:int -> ?trace_capacity:int -> Timing.t -> t
(** Defaults: 16 MB of memory, 2 cores (the dual-core dc5750), and a
    4096-event trace ring buffer. *)

val set_tpm_hooks : t -> tpm_hooks -> unit

val set_injector : t -> Flicker_fault.Injector.t -> unit
val injector : t -> Flicker_fault.Injector.t option

val fault_cat : string
(** Tracer category ("fault") for injected-fault instants. *)

val fault_event : t -> ?args:(string * Flicker_obs.Tracer.arg) list -> string -> unit
(** Record an instant under {!fault_cat}: hook sites emit one per
    injected fault so a chaos run's trace shows exactly what fired. *)

val log_event : t -> string -> unit
(** Record an instant event on the tracer (and the debug log). *)

val protocol_cat : string
(** Tracer category ("protocol") for the session-lifecycle instants the
    temporal verifier consumes. *)

val protocol_event : t -> ?args:(string * Flicker_obs.Tracer.arg) list -> string -> unit
(** Record an instant under {!protocol_cat}. Hardware and OS layers emit
    these at protocol-relevant state changes (SKINIT begin/end, DEV
    range changes, suspend/resume, PCR extends, DMA attempts) so every
    execution's trace can be checked against the protocol automata. *)

val events_between : t -> since:float -> event list
(** Instant events at or after [since] still retained in the ring
    buffer, oldest first. The buffer is bounded: a long-running platform
    keeps only the most recent [trace_capacity] events. *)

val event_count : t -> int
(** Events currently retained (never exceeds the trace capacity). *)

val events_dropped : t -> int
(** Events evicted from the ring buffer so far. *)

val charge : t -> float -> unit
(** Advance the simulated clock by [ms], scaled by the injector's clock
    skew factor when one is installed. *)

val power_cycle : t -> unit
(** Crash-and-reboot: zero all memory, clear the DEV, return every core
    to ring-0 long-mode [Running]. Volatile state is gone; the TPM's
    non-volatile state survives but its PCRs must be rebooted by the
    caller ({!Flicker_tpm.Tpm.reboot} via [Platform.power_cycle]). *)

val charge_sha1 : t -> bytes:int -> unit
(** Charge CPU time for hashing [bytes] on the main processor. *)
