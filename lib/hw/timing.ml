type tpm_profile = {
  tpm_name : string;
  quote_ms : float;
  seal_ms : float;
  unseal_ms : float;
  pcr_extend_ms : float;
  pcr_read_ms : float;
  get_random_ms_per_128b : float;
  nv_read_ms : float;
  nv_write_ms : float;
  counter_increment_ms : float;
  load_key_ms : float;
  skinit_base_ms : float;
  skinit_ms_per_kb : float;
}

type cpu_profile = {
  cpu_name : string;
  sha1_mb_per_ms : float;
  rsa_keygen_1024_ms : float;
  rsa_private_1024_ms : float;
  rsa_public_1024_ms : float;
  aes_mb_per_ms : float;
  misc_op_ms : float;
}

type network_profile = { rtt_ms : float; bandwidth_kb_per_ms : float }

type t = {
  tpm : tpm_profile;
  cpu : cpu_profile;
  network : network_profile;
}

(* Table 2 linear fit: 4 KB -> 11.9 ms, 64 KB -> 177.5 ms gives a slope of
   2.76 ms/KB and a sub-millisecond intercept for the CPU state change. *)
let broadcom =
  {
    tpm_name = "Broadcom BCM0102 (HP dc5750)";
    quote_ms = 972.7;
    seal_ms = 10.2;
    unseal_ms = 898.3;
    pcr_extend_ms = 1.2;
    pcr_read_ms = 0.6;
    get_random_ms_per_128b = 1.3;
    nv_read_ms = 22.0;
    nv_write_ms = 28.0;
    counter_increment_ms = 30.0;
    load_key_ms = 40.0;
    skinit_base_ms = 0.9;
    skinit_ms_per_kb = 2.76;
  }

let infineon =
  {
    broadcom with
    tpm_name = "Infineon v1.2";
    quote_ms = 331.0;
    unseal_ms = 391.0;
    seal_ms = 8.0;
    pcr_extend_ms = 0.8;
  }

(* The concurrent ASPLOS'08 work projects up to six orders of magnitude;
   we model a conservative 1000x on the TPM-bound operations. *)
let future_tpm =
  {
    tpm_name = "projected next-generation";
    quote_ms = 0.97;
    seal_ms = 0.01;
    unseal_ms = 0.9;
    pcr_extend_ms = 0.001;
    pcr_read_ms = 0.001;
    get_random_ms_per_128b = 0.001;
    nv_read_ms = 0.02;
    nv_write_ms = 0.03;
    counter_increment_ms = 0.03;
    load_key_ms = 0.04;
    skinit_base_ms = 0.9;
    skinit_ms_per_kb = 0.003;
  }

(* The 22.0 ms kernel hash (Table 1) over the simulated 5.06 MB kernel
   image pins the SHA-1 rate at 0.23 MB/ms (~230 MB/s, plausible for a
   2.2 GHz core). *)
let athlon64_x2 =
  {
    cpu_name = "AMD Athlon64 X2 4200+ @ 2.2 GHz";
    sha1_mb_per_ms = 0.23;
    rsa_keygen_1024_ms = 185.7;
    rsa_private_1024_ms = 4.6;
    rsa_public_1024_ms = 0.25;
    aes_mb_per_ms = 0.10;
    misc_op_ms = 0.01;
  }

let paper_network = { rtt_ms = 9.45; bandwidth_kb_per_ms = 1000.0 }
let default = { tpm = broadcom; cpu = athlon64_x2; network = paper_network }
let with_tpm tpm t = { t with tpm }

let skinit_ms t ~slb_bytes =
  t.tpm.skinit_base_ms +. (t.tpm.skinit_ms_per_kb *. (float_of_int slb_bytes /. 1024.0))

let sha1_ms t ~bytes =
  float_of_int bytes /. (1024.0 *. 1024.0) /. t.cpu.sha1_mb_per_ms

(* Keygen cost is dominated by the prime search, whose per-candidate
   modular exponentiation scales cubically in the modulus size while the
   expected number of candidates scales linearly -- but the paper only
   calibrates the 1024-bit point, so a cubic fit keeps the shape sane for
   the 512..2048 range the applications use. *)
let scale_cubic base bits = base *. ((float_of_int bits /. 1024.0) ** 3.0)

let rsa_keygen_ms t ~bits = scale_cubic t.cpu.rsa_keygen_1024_ms bits
let rsa_private_ms t ~bits = scale_cubic t.cpu.rsa_private_1024_ms bits

let rsa_public_ms t ~bits =
  t.cpu.rsa_public_1024_ms *. ((float_of_int bits /. 1024.0) ** 2.0)

let get_random_ms t ~bytes =
  if bytes <= 0 then 0.0
  else begin
    let blocks = (bytes + 127) / 128 in
    t.tpm.get_random_ms_per_128b *. float_of_int blocks
  end

let network_ms t ~bytes =
  (t.network.rtt_ms /. 2.0)
  +. (float_of_int bytes /. 1024.0 /. t.network.bandwidth_kb_per_ms)
