module Tracer = Flicker_obs.Tracer
module Metrics = Flicker_obs.Metrics

type tpm_hooks = {
  dynamic_pcr_reset : unit -> unit;
  measure_into_pcr17 : string -> unit;
}

type event = { at : float; detail : string }

type t = {
  memory : Memory.t;
  dev : Dev.t;
  cpus : Cpu.t;
  clock : Clock.t;
  timing : Timing.t;
  tracer : Tracer.t;
  metrics : Metrics.t;
  mutable tpm_hooks : tpm_hooks option;
}

(* Category for the instants the temporal verifier consumes; see
   [Flicker_verify.Event] for the alphabet built from them. *)
let protocol_cat = "protocol"

let create ?(memory_size = 16 * 1024 * 1024) ?(cores = 2) ?(trace_capacity = 4096)
    timing =
  let memory = Memory.create ~size:memory_size in
  let clock = Clock.create () in
  let t =
    {
      memory;
      dev = Dev.create ~pages:(memory_size / Memory.page_size);
      cpus = Cpu.create ~cores;
      clock;
      timing;
      tracer = Tracer.create ~capacity:trace_capacity ~now:(fun () -> Clock.now clock) ();
      metrics = Metrics.create ();
      tpm_hooks = None;
    }
  in
  Dev.set_notify t.dev (fun change ->
      let range name addr len =
        Tracer.instant t.tracer ~cat:protocol_cat name
          ~args:[ ("addr", Tracer.Count addr); ("len", Tracer.Count len) ]
      in
      match change with
      | Dev.Protected { addr; len } -> range "dev.protect" addr len
      | Dev.Unprotected { addr; len } -> range "dev.unprotect" addr len
      | Dev.Cleared -> Tracer.instant t.tracer ~cat:protocol_cat "dev.clear");
  t

let set_tpm_hooks t hooks = t.tpm_hooks <- Some hooks

let log_event t detail =
  Tracer.instant t.tracer ~cat:"machine" detail;
  Logs.debug (fun m -> m "[%.3f ms] %s" (Clock.now t.clock) detail)

let protocol_event t ?(args = []) name =
  Tracer.instant t.tracer ~cat:protocol_cat ~args name

let events_between t ~since =
  List.filter_map
    (fun (e : Tracer.event) ->
      match e.Tracer.kind with
      | Tracer.Instant when e.Tracer.ts >= since ->
          Some { at = e.Tracer.ts; detail = e.Tracer.name }
      | _ -> None)
    (Tracer.events t.tracer)

let event_count t = Tracer.length t.tracer
let events_dropped t = Tracer.dropped t.tracer

let charge t ms = Clock.advance t.clock ms
let charge_sha1 t ~bytes = charge t (Timing.sha1_ms t.timing ~bytes)
