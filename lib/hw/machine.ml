module Tracer = Flicker_obs.Tracer
module Metrics = Flicker_obs.Metrics
module Injector = Flicker_fault.Injector

type tpm_hooks = {
  dynamic_pcr_reset : unit -> unit;
  measure_into_pcr17 : string -> unit;
}

type event = { at : float; detail : string }

type t = {
  memory : Memory.t;
  dev : Dev.t;
  cpus : Cpu.t;
  clock : Clock.t;
  timing : Timing.t;
  tracer : Tracer.t;
  metrics : Metrics.t;
  mutable tpm_hooks : tpm_hooks option;
  mutable injector : Injector.t option;
}

(* Category for the instants the temporal verifier consumes; see
   [Flicker_verify.Event] for the alphabet built from them. *)
let protocol_cat = "protocol"

(* Category for injected-fault instants, so chaos runs can be separated
   from protocol traffic when reading a trace. *)
let fault_cat = "fault"

let create ?(memory_size = 16 * 1024 * 1024) ?(cores = 2) ?(trace_capacity = 4096)
    timing =
  let memory = Memory.create ~size:memory_size in
  let clock = Clock.create () in
  let t =
    {
      memory;
      dev = Dev.create ~pages:(memory_size / Memory.page_size);
      cpus = Cpu.create ~cores;
      clock;
      timing;
      tracer = Tracer.create ~capacity:trace_capacity ~now:(fun () -> Clock.now clock) ();
      metrics = Metrics.create ();
      tpm_hooks = None;
      injector = None;
    }
  in
  Dev.set_notify t.dev (fun change ->
      let range name addr len =
        Tracer.instant t.tracer ~cat:protocol_cat name
          ~args:[ ("addr", Tracer.Count addr); ("len", Tracer.Count len) ]
      in
      match change with
      | Dev.Protected { addr; len } -> range "dev.protect" addr len
      | Dev.Unprotected { addr; len } -> range "dev.unprotect" addr len
      | Dev.Cleared -> Tracer.instant t.tracer ~cat:protocol_cat "dev.clear");
  t

let set_tpm_hooks t hooks = t.tpm_hooks <- Some hooks
let set_injector t inj = t.injector <- Some inj
let injector t = t.injector

let fault_event t ?(args = []) name =
  Tracer.instant t.tracer ~cat:fault_cat ~args name

let log_event t detail =
  Tracer.instant t.tracer ~cat:"machine" detail;
  Logs.debug (fun m -> m "[%.3f ms] %s" (Clock.now t.clock) detail)

let protocol_event t ?(args = []) name =
  Tracer.instant t.tracer ~cat:protocol_cat ~args name

let events_between t ~since =
  List.filter_map
    (fun (e : Tracer.event) ->
      match e.Tracer.kind with
      | Tracer.Instant when e.Tracer.ts >= since ->
          Some { at = e.Tracer.ts; detail = e.Tracer.name }
      | _ -> None)
    (Tracer.events t.tracer)

let event_count t = Tracer.length t.tracer
let events_dropped t = Tracer.dropped t.tracer

let charge t ms =
  let ms =
    match t.injector with
    | Some inj -> ms *. Injector.clock_skew inj
    | None -> ms
  in
  Clock.advance t.clock ms

let charge_sha1 t ~bytes = charge t (Timing.sha1_ms t.timing ~bytes)

(* A crash: everything volatile is gone. Memory is zeroed (DRAM does not
   survive the reset in this model), the DEV forgets its protections, and
   every core comes back up running the freshly rebooted OS. The caller
   owns the non-volatile pieces: the TPM's NV/counters/keys persist and
   must be rebooted separately (see [Flicker_tpm.Tpm.reboot]). *)
let power_cycle t =
  fault_event t "machine.power_cycle";
  Metrics.incr t.metrics "fault.power_cycles";
  Memory.zero t.memory ~addr:0 ~len:(Memory.size t.memory);
  Dev.clear t.dev;
  List.iter
    (fun (c : Cpu.core) ->
      c.Cpu.run_state <- Cpu.Running;
      c.Cpu.ring <- 0;
      c.Cpu.interrupts_enabled <- true;
      c.Cpu.mode <- Cpu.Long_mode;
      c.Cpu.paging_enabled <- true)
    (Cpu.all t.cpus);
  log_event t "machine: power cycled (volatile state lost)"
