module Tracer = Flicker_obs.Tracer
module Metrics = Flicker_obs.Metrics

type tpm_hooks = {
  dynamic_pcr_reset : unit -> unit;
  measure_into_pcr17 : string -> unit;
}

type event = { at : float; detail : string }

type t = {
  memory : Memory.t;
  dev : Dev.t;
  cpus : Cpu.t;
  clock : Clock.t;
  timing : Timing.t;
  tracer : Tracer.t;
  metrics : Metrics.t;
  mutable tpm_hooks : tpm_hooks option;
}

let create ?(memory_size = 16 * 1024 * 1024) ?(cores = 2) ?(trace_capacity = 4096)
    timing =
  let memory = Memory.create ~size:memory_size in
  let clock = Clock.create () in
  {
    memory;
    dev = Dev.create ~pages:(memory_size / Memory.page_size);
    cpus = Cpu.create ~cores;
    clock;
    timing;
    tracer = Tracer.create ~capacity:trace_capacity ~now:(fun () -> Clock.now clock) ();
    metrics = Metrics.create ();
    tpm_hooks = None;
  }

let set_tpm_hooks t hooks = t.tpm_hooks <- Some hooks

let log_event t detail =
  Tracer.instant t.tracer ~cat:"machine" detail;
  Logs.debug (fun m -> m "[%.3f ms] %s" (Clock.now t.clock) detail)

let events_between t ~since =
  List.filter_map
    (fun (e : Tracer.event) ->
      match e.Tracer.kind with
      | Tracer.Instant when e.Tracer.ts >= since ->
          Some { at = e.Tracer.ts; detail = e.Tracer.name }
      | _ -> None)
    (Tracer.events t.tracer)

let event_count t = Tracer.length t.tracer
let events_dropped t = Tracer.dropped t.tracer

let charge t ms = Clock.advance t.clock ms
let charge_sha1 t ~bytes = charge t (Timing.sha1_ms t.timing ~bytes)
