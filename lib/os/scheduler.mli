(** A small multi-core process scheduler for the untrusted OS.

    Exists to reproduce the paper's system-impact experiments: CPU hotplug
    removes the APs from scheduling before a session (Section 4.2), a
    Flicker session freezes all progress (Section 7.5), and Table 3
    measures a kernel build's wall-clock time under periodic detector
    runs. Work is measured in single-core CPU-milliseconds. *)

type process = {
  pid : int;
  name : string;
  mutable remaining_ms : float;
  mutable started_at : float;
  mutable completed_at : float option;
}

type t

val create : Flicker_hw.Machine.t -> t
val spawn : t -> name:string -> work_ms:float -> process
(** O(1): a long-running service spawns an unbounded stream of
    processes. The returned record stays valid (and its [completed_at]
    readable) after the scheduler retires the process internally. *)

val active_processes : t -> process list
val resident_processes : t -> int
(** Processes the scheduler still tracks. Completed processes are pruned
    at the sync that retires them, so this stays bounded by the number of
    concurrently runnable processes — it does not grow with service
    lifetime. *)

val completed_total : t -> int
(** Processes retired since creation. *)

val last_completion : t -> (int * float) option
(** (pid, completion time) of the most recently retired process;
    completion timestamps for a specific process remain queryable from
    the record {!spawn} returned. *)

val online_cores : t -> int
(** Cores currently accepting work ([Running] state). *)

val run_for : t -> float -> unit
(** Advance the wall clock by [ms], distributing core time fairly over
    runnable processes. Makes no progress while the OS is suspended.
    Progress accounting is driven by clock deltas, so time that passes
    elsewhere in the simulation while the OS is live (a TPM quote, a DMA
    transfer) also lets processes run — only a Flicker session freezes
    them, which is exactly the Section 7.5 behaviour. *)

val run_until_complete : t -> process -> unit
(** @raise Failure if the OS is suspended or no core is online. *)

val suspend : t -> unit
(** Enter a Flicker session: no process makes progress. *)

val resume : t -> unit
val is_suspended : t -> bool
