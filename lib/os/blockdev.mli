(** Block devices (hard drive, CD-ROM, USB flash).

    Section 7.5 measures whether repeated Flicker sessions corrupt
    in-flight block transfers: the paper copies large files between
    devices while an 8.3 s PAL runs repeatedly and checks integrity with
    md5sum. The simulated devices transfer in chunks at a fixed rate;
    chunks issued while the OS is suspended are buffered by the device
    and complete after resume, which is why integrity holds. *)

type t

type driver =
  | Legacy
      (** in-flight requests time out if the OS stays unresponsive too
          long (a SCSI-style command timeout) *)
  | Flicker_aware
      (** the Section 7.5 proposal: the driver quiesces the device before
          a session, so no request is in flight while the OS is frozen *)

val create : name:string -> rate_kb_per_ms:float -> t
val name : t -> string
val store : t -> file:string -> string -> unit
val fetch : t -> file:string -> string option
val md5sum : t -> file:string -> (string, string) result

val transfer :
  Flicker_hw.Machine.t ->
  scheduler:Scheduler.t ->
  src:t ->
  dst:t ->
  file:string ->
  ?chunk_kb:int ->
  ?between_chunks:(unit -> unit) ->
  ?driver:driver ->
  ?timeout_ms:float ->
  unit ->
  (float, string) result
(** Copy [file] from [src] to [dst], advancing the clock at the slower
    device's rate. [between_chunks] is a hook the experiment uses to
    interleave Flicker sessions with the copy. Returns the wall-clock
    milliseconds the copy took.

    With a [Legacy] driver (the default), a chunk left in flight while
    the OS is unresponsive for more than [timeout_ms] (default 30 000, a
    typical SCSI command timeout) aborts the copy with an I/O error —
    the risk Section 7.5 identifies for very long sessions. A
    [Flicker_aware] driver quiesces the device first and never times
    out. The paper's 8.3 s sessions are safely below the default
    timeout either way, matching its observation of zero errors.

    Issuing a chunk while the OS is suspended fails the copy with an I/O
    error: the driver cannot run mid-session, and the device must never
    resume the OS itself (the running session caps PCR 17, zeroizes, and
    resumes in that order — a device-initiated resume would violate the
    cap-before-resume invariant the protocol verifier checks). *)
