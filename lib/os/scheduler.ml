module Cpu = Flicker_hw.Cpu
module Clock = Flicker_hw.Clock
module Machine = Flicker_hw.Machine

type process = {
  pid : int;
  name : string;
  mutable remaining_ms : float;
  mutable started_at : float;
  mutable completed_at : float option;
}

module Tracer = Flicker_obs.Tracer
module Metrics = Flicker_obs.Metrics

type t = {
  machine : Machine.t;
  mutable processes : process list;
      (* runnable only: completed processes are pruned at the sync that
         retires them (their records stay live in the spawner's hands) *)
  mutable next_pid : int;
  mutable completed_total : int;
  mutable last_completion : (int * float) option;
  mutable suspended : bool;
  mutable last_sync : float;
      (* clock value up to which process progress has been accounted *)
  mutable suspend_span : Tracer.span_handle option;
      (* open "OS suspended" span between suspend and resume *)
}

let create machine =
  {
    machine;
    processes = [];
    next_pid = 1;
    completed_total = 0;
    last_completion = None;
    suspended = false;
    last_sync = Clock.now machine.Machine.clock;
    suspend_span = None;
  }

let active_processes t = List.filter (fun p -> p.completed_at = None) t.processes
let resident_processes t = List.length t.processes
let completed_total t = t.completed_total
let last_completion t = t.last_completion

let online_cores t =
  List.length
    (List.filter
       (fun (c : Cpu.core) -> c.Cpu.run_state = Cpu.Running)
       (Cpu.all t.machine.Machine.cpus))

(* Fair-share progression: with [n] runnable processes on [c] cores, each
   process advances at rate min(1, c/n). Progress is driven by clock
   deltas, so wall time spent in non-suspending activities elsewhere in
   the simulation (a TPM quote, a device transfer) still lets OS
   processes run — only a Flicker session freezes them. Processed in
   analytic segments up to the next completion. *)
let sync t =
  let now = Clock.now t.machine.Machine.clock in
  if t.suspended then t.last_sync <- now
  else begin
    let epsilon = 1e-9 in
    let cursor = ref t.last_sync in
    let continue = ref true in
    let retired = ref false in
    while !continue && now -. !cursor > epsilon do
      let active = t.processes in
      let cores = online_cores t in
      if cores = 0 || active = [] then begin
        cursor := now;
        continue := false
      end
      else begin
        let n = List.length active in
        let rate = min 1.0 (float_of_int cores /. float_of_int n) in
        let soonest =
          List.fold_left (fun acc p -> min acc (p.remaining_ms /. rate)) infinity active
        in
        let step = min (now -. !cursor) soonest in
        cursor := !cursor +. step;
        List.iter
          (fun p ->
            p.remaining_ms <- p.remaining_ms -. (step *. rate);
            if p.remaining_ms <= epsilon then begin
              p.remaining_ms <- 0.0;
              p.completed_at <- Some !cursor;
              t.completed_total <- t.completed_total + 1;
              t.last_completion <- Some (p.pid, !cursor);
              retired := true
            end)
          active;
        (* prune inside the loop so the next segment's fair-share rate
           sees only runnable processes *)
        if !retired then begin
          t.processes <- List.filter (fun p -> p.completed_at = None) t.processes;
          retired := false
        end
      end
    done;
    t.last_sync <- now
  end

let spawn t ~name ~work_ms =
  if work_ms < 0.0 then invalid_arg "Scheduler.spawn: negative work";
  sync t;
  let p =
    {
      pid = t.next_pid;
      name;
      remaining_ms = work_ms;
      started_at = Clock.now t.machine.Machine.clock;
      completed_at = None;
    }
  in
  t.next_pid <- t.next_pid + 1;
  (* O(1) prepend: the fair-share rate is order-independent, and a
     long-running service spawns an unbounded stream of processes *)
  t.processes <- p :: t.processes;
  p

let run_for t ms =
  if ms < 0.0 then invalid_arg "Scheduler.run_for: negative time";
  sync t;
  Clock.advance t.machine.Machine.clock ms;
  sync t

let run_until_complete t p =
  if t.suspended then failwith "Scheduler.run_until_complete: OS suspended";
  if online_cores t = 0 then failwith "Scheduler.run_until_complete: no online core";
  while p.completed_at = None do
    run_for t (max 1.0 p.remaining_ms)
  done

let suspend t =
  sync t;
  t.suspended <- true;
  Metrics.incr t.machine.Machine.metrics "os.suspensions";
  t.suspend_span <-
    Some (Tracer.begin_span t.machine.Machine.tracer ~cat:"os" "OS suspended");
  Machine.protocol_event t.machine "os.suspend";
  Machine.log_event t.machine "os: suspended for Flicker session"

let resume t =
  t.suspended <- false;
  t.last_sync <- Clock.now t.machine.Machine.clock;
  (match t.suspend_span with
  | Some h ->
      Tracer.end_span t.machine.Machine.tracer h;
      t.suspend_span <- None
  | None -> ());
  Machine.protocol_event t.machine "os.resume";
  Machine.log_event t.machine "os: resumed"

let is_suspended t = t.suspended
