open Flicker_crypto
module Clock = Flicker_hw.Clock
module Machine = Flicker_hw.Machine

type t = {
  device_name : string;
  rate_kb_per_ms : float;
  files : (string, string) Hashtbl.t;
}

type driver = Legacy | Flicker_aware

let create ~name ~rate_kb_per_ms =
  if rate_kb_per_ms <= 0.0 then invalid_arg "Blockdev.create: non-positive rate";
  { device_name = name; rate_kb_per_ms; files = Hashtbl.create 4 }

let name t = t.device_name
let store t ~file data = Hashtbl.replace t.files file data
let fetch t ~file = Hashtbl.find_opt t.files file

let md5sum t ~file =
  match fetch t ~file with
  | Some data -> Ok (Md5.hex data)
  | None -> Error (Printf.sprintf "%s: no such file on %s" file t.device_name)

exception Io_timeout of string

let transfer machine ~scheduler ~src ~dst ~file ?(chunk_kb = 64)
    ?(between_chunks = fun () -> ()) ?(driver = Legacy) ?(timeout_ms = 30_000.0) () =
  match fetch src ~file with
  | None -> Error (Printf.sprintf "%s: no such file on %s" file src.device_name)
  | Some data ->
      let started = Clock.now machine.Machine.clock in
      let rate = min src.rate_kb_per_ms dst.rate_kb_per_ms in
      let chunk_bytes = chunk_kb * 1024 in
      let out = Buffer.create (String.length data) in
      (try
         List.iter
           (fun chunk ->
             (* A suspended OS cannot issue the next request. This used to
                forcibly resume the scheduler — resuming the OS mid-session,
                before the running session had capped PCR 17 or zeroized the
                SLB, which the cap-before-resume automaton flags. The driver
                must instead fail the request: only the session that owns
                the machine may resume the OS. *)
             if Scheduler.is_suspended scheduler then
               raise
                 (Io_timeout
                    (Printf.sprintf
                       "%s: request issued while the OS is suspended; a Flicker \
                        session owns the machine and must cap PCR 17 and resume \
                        the OS before drivers can run"
                       dst.device_name));
             let ms = float_of_int (String.length chunk) /. 1024.0 /. rate in
             Clock.advance machine.Machine.clock ms;
             Buffer.add_string out chunk;
             (* the next request is in flight when the hook (a Flicker
                session, typically) runs — unless the driver quiesced *)
             let before_hook = Clock.now machine.Machine.clock in
             between_chunks ();
             let stall = Clock.now machine.Machine.clock -. before_hook in
             match driver with
             | Flicker_aware -> ()
             | Legacy ->
                 if stall > timeout_ms then
                   raise
                     (Io_timeout
                        (Printf.sprintf
                           "%s: command timeout after %.1f s of OS unresponsiveness \
                            (legacy driver; use a Flicker-aware driver or shorter \
                            sessions)"
                           dst.device_name (stall /. 1000.0))))
           (Util.chunks chunk_bytes data);
         store dst ~file (Buffer.contents out);
         Ok (Clock.now machine.Machine.clock -. started)
       with Io_timeout msg -> Error msg)
