(** Memoized attestation appraisal — the relying-party side of serving
    cached results.

    A front end that answers from its result cache hands every client
    the {e original} quote, so one platform's evidence is appraised over
    and over. The two host-crypto stages of {!Flicker_core.Verifier} —
    AIK-certificate validation (same certificate for every quote a
    platform ever produces) and quote-signature verification (same
    bundle re-verified on every cache hit) — are memoized here, while
    the context-dependent stages (nonce freshness, PCR-17 recomputation
    against the claimed I/O) always re-run. Verdicts are cached
    including failures: a forged certificate or signature stays bad.

    Savings are accounted in the same instrument the measurement-cache
    bench uses, {!Flicker_crypto.Sha1.bytes_hashed}: a miss records the
    stage's hashing cost, a hit credits it to [bytes_saved]. Memo keys
    are built by concatenation, never hashing, so keying adds nothing to
    the instrument. *)

type t

val create : ca_key:Flicker_crypto.Rsa.public -> unit -> t
(** An appraiser trusting one Privacy CA. *)

val verify :
  t ->
  Flicker_core.Verifier.expectation ->
  Flicker_core.Attestation.evidence ->
  (unit, Flicker_core.Verifier.failure) result
(** Same verdict as {!Flicker_core.Verifier.verify} with the appraiser's
    CA key — the staged checks run in the same order, so the first
    failing stage reported is identical — but the certificate and
    quote-signature stages run at most once per distinct input. *)

type stats = {
  cert_hits : int;
  cert_misses : int;  (** certificate validations actually run *)
  quote_hits : int;  (** memoized quote verifications *)
  quote_misses : int;  (** quote-signature verifications actually run *)
  bytes_saved : int;
      (** host-crypto bytes ({!Flicker_crypto.Sha1.bytes_hashed}) the
          memo hits avoided re-hashing *)
}

val stats : t -> stats
