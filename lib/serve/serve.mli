(** The attested serving tier: a verifiable result cache in front of the
    fleet.

    Flicker's value proposition is paying the SKINIT + TPM session cost
    only when isolation is needed — yet the fleet pays it on {e every}
    request. This tier makes repeated inputs free: each batch runs as an
    attested session (executed under a fresh verifier nonce, PCR 17
    quoted once per chunk), and every result is stored as a {!bundle} —
    output, original quote, nonce, quoted PCR composite — keyed by
    [(PCR-17 launch composite, input hash)]. A later identical request
    is answered straight from the cache, and the client can still verify
    the bundle against the original quote: the platform is not touched,
    but nothing is taken on faith.

    Cache entries are only as trustworthy as the quoting platform's
    state, so entries are invalidated per-platform on the two events
    that change it — reboot ({!Flicker_service.Fleet.add_crash_hook}
    fires this eagerly, before crash victims are re-dispatched) and NV
    counter advance ({!advance_nv}) — plus the usual capacity (LRU) and
    virtual-clock TTL bounds of {!Cache}. A stale entry is never served:
    even if a sweep were missed, the interceptor re-checks the epoch
    structurally and {!verify_bundle} fails on it. *)

type config = {
  fleet : Flicker_service.Fleet.config;
  cache_capacity : int;
  cache_ttl_ms : float option;  (** [None]: entries never expire *)
  cache_homed : bool;
      (** serve homed (sealed-affinity) requests from the cache too;
          [false] — the default — routes them to their home platform so
          its sealed state stays authoritative *)
  work_ms : float;  (** simulated PAL work per request in a batch *)
}

val default_config : config
(** {!Flicker_service.Fleet.default_config} underneath; capacity 1024,
    no TTL, homed requests bypass the cache, 1 ms of work. *)

type t

val create : ?config:config -> ?warm:string list -> unit -> t
(** Build the tier and its fleet. [warm] payloads are executed —
    through the same attested path as live traffic, distributed
    round-robin across platforms — during provisioning (before the
    fleet's clock starts and before fault injectors are installed), so
    their results are cached and verifiable from the first request on.
    @raise Failure if warming fails. *)

val fleet : t -> Flicker_service.Fleet.t
(** The fleet underneath: submit with
    {!Flicker_service.Fleet.submit} / [submit_open_loop] and drive with
    [run] as usual. The tier is installed as the fleet's interceptor, so
    cacheable requests complete with [platform = -1] and [batch = 0] in
    their disposition. *)

val config : t -> config

type bundle = {
  output : string;
  payload : string;
  nonce : string;  (** the verifier nonce the quoted session ran under *)
  evidence : Flicker_core.Attestation.evidence;  (** the original quote *)
  pcr17 : string;  (** quoted final PCR 17 *)
  platform : int;
  boots : int;  (** the platform's reboot epoch when quoted *)
  nv : int;  (** the platform's NV epoch when quoted *)
  quoted_at_ms : float;
}

val bundle_for : t -> int -> bundle option
(** The verifiable bundle behind a request id: for a cache hit, the
    cached bundle it was served from; for a miss, the bundle minted by
    its session. [None] for failed/rejected/expired requests. *)

type verify_failure =
  | Stale of string
      (** the quoting platform rebooted or advanced its NV counter since
          the quote: trust state changed, the bundle must be re-earned *)
  | Crypto of Flicker_core.Verifier.failure
  | Not_in_batch
      (** the quote verifies but this (payload, output) pair is not one
          of the quoted session's positional I/O pairs *)

val pp_verify_failure : Format.formatter -> verify_failure -> unit
val verify_failure_to_string : verify_failure -> string

val verify_bundle : t -> bundle -> (unit, verify_failure) result
(** Client-side appraisal of a bundle, cached or fresh: epoch freshness,
    then the full {!Flicker_core.Verifier} chain (via {!Appraise}, so
    repeated appraisals memoize the host crypto), then positional
    membership of the (payload, output) pair in the quoted session's
    claimed I/O. [Ok ()] means exactly what a fresh attestation would:
    this output was produced from this payload by the expected PAL under
    Flicker protection. *)

val advance_nv : t -> int -> unit
(** Model platform [i] advancing its TPM NV counter (e.g. a replay-
    protected state update): bumps its NV epoch and invalidates its
    cache entries. @raise Invalid_argument outside the fleet. *)

val cached : t -> string -> bool
(** Whether a payload would currently be served from the cache (present,
    unexpired, and fresh). Counts as a lookup in the cache stats. *)

val cache_key : t -> string -> string
val cache_length : t -> int
val cache_stats : t -> Cache.stats

val appraiser : t -> Appraise.t
(** The tier's memoizing appraiser, shared by every {!verify_bundle}. *)

val metrics : t -> Flicker_obs.Metrics.t
(** The tier's registry, reconciled on read: [serve.cache.hits],
    [serve.cache.misses], [serve.cache.stale_rejected],
    [serve.cache.insertions], [serve.cache.evictions],
    [serve.cache.expirations], [serve.cache.invalidations] (with
    [serve.cache.invalidated_reboot] / [serve.cache.invalidated_nv]
    attributing them), and the appraiser's [serve.memo.cert_hits],
    [serve.memo.cert_misses], [serve.memo.quote_hits],
    [serve.memo.quote_misses], [serve.memo.bytes_saved]. *)
