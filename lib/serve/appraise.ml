module Rsa = Flicker_crypto.Rsa
module Sha1 = Flicker_crypto.Sha1
module Tpm = Flicker_tpm.Tpm
module Privacy_ca = Flicker_tpm.Privacy_ca
module Verifier = Flicker_core.Verifier
module Attestation = Flicker_core.Attestation

(* Memo keys are built by plain concatenation of the wire encodings —
   never by hashing — so key construction adds nothing to the
   [Sha1.bytes_hashed] instrument the savings are reported in. *)

let cert_key (cert : Privacy_ca.aik_certificate) =
  String.concat "|"
    [
      Rsa.public_to_string cert.Privacy_ca.subject_aik;
      cert.Privacy_ca.issuer;
      cert.Privacy_ca.cert_signature;
    ]

let quote_key ~(aik : Rsa.public) (quote : Tpm.quote) =
  String.concat "|"
    (Rsa.public_to_string aik
    :: quote.Tpm.quote_nonce
    :: quote.Tpm.signature
    :: List.map
         (fun (idx, digest) -> string_of_int idx ^ ":" ^ digest)
         quote.Tpm.quoted_composite)

type stats = {
  cert_hits : int;
  cert_misses : int;
  quote_hits : int;
  quote_misses : int;
  bytes_saved : int;
}

type 'r memo = {
  table : (string, 'r * int) Hashtbl.t;  (* key -> (verdict, bytes cost) *)
  mutable hits : int;
  mutable misses : int;
}

type t = {
  ca_key : Rsa.public;
  certs : (unit, Verifier.failure) result memo;
  quotes : (unit, Verifier.failure) result memo;
  mutable bytes_saved : int;
}

let create ~ca_key () =
  let memo () = { table = Hashtbl.create 32; hits = 0; misses = 0 } in
  { ca_key; certs = memo (); quotes = memo (); bytes_saved = 0 }

(* On a miss the stage runs for real and its [Sha1.bytes_hashed] delta is
   stored as the entry's cost; each later hit skips the stage and credits
   that cost to [bytes_saved]. Failures are memoized too — a bad
   signature stays bad. *)
let memoized t memo key stage =
  match Hashtbl.find_opt memo.table key with
  | Some (verdict, cost) ->
      memo.hits <- memo.hits + 1;
      t.bytes_saved <- t.bytes_saved + cost;
      verdict
  | None ->
      memo.misses <- memo.misses + 1;
      let before = Sha1.bytes_hashed () in
      let verdict = stage () in
      let cost = Sha1.bytes_hashed () - before in
      Hashtbl.replace memo.table key (verdict, cost);
      verdict

let verify t expectation (evidence : Attestation.evidence) =
  let ( let* ) = Result.bind in
  let cert = evidence.Attestation.aik_cert in
  let quote = evidence.Attestation.quote in
  let* () =
    memoized t t.certs (cert_key cert) (fun () ->
        Verifier.check_certificate ~ca_key:t.ca_key cert)
  in
  let aik = cert.Privacy_ca.subject_aik in
  let* () =
    memoized t t.quotes (quote_key ~aik quote) (fun () ->
        Verifier.check_quote_signature ~aik quote)
  in
  (* freshness and PCR recomputation depend on the expectation at hand
     (the challenge nonce, the claimed I/O) — always re-run *)
  let* () = Verifier.check_freshness expectation quote in
  Verifier.check_pcr17 expectation evidence

let stats t =
  {
    cert_hits = t.certs.hits;
    cert_misses = t.certs.misses;
    quote_hits = t.quotes.hits;
    quote_misses = t.quotes.misses;
    bytes_saved = t.bytes_saved;
  }
