module Platform = Flicker_core.Platform
module Session = Flicker_core.Session
module Attestation = Flicker_core.Attestation
module Verifier = Flicker_core.Verifier
module Measurement = Flicker_core.Measurement
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Builder = Flicker_slb.Builder
module Layout = Flicker_slb.Layout
module Tpm = Flicker_tpm.Tpm
module Util = Flicker_crypto.Util
module Sha1 = Flicker_crypto.Sha1
module Metrics = Flicker_obs.Metrics
module Fleet = Flicker_service.Fleet
module Request = Flicker_service.Request
module Workload = Flicker_service.Workload

type config = {
  fleet : Fleet.config;
  cache_capacity : int;
  cache_ttl_ms : float option;
  cache_homed : bool;
  work_ms : float;
}

let default_config =
  {
    fleet = Fleet.default_config;
    cache_capacity = 1024;
    cache_ttl_ms = None;
    cache_homed = false;
    work_ms = 1.0;
  }

type bundle = {
  output : string;
  payload : string;
  nonce : string;
  evidence : Attestation.evidence;
  pcr17 : string;
  platform : int;
  boots : int;
  nv : int;
  quoted_at_ms : float;
}

type verify_failure =
  | Stale of string
  | Crypto of Verifier.failure
  | Not_in_batch

let verify_failure_to_string = function
  | Stale why -> "stale bundle: " ^ why
  | Crypto f -> Verifier.failure_to_string f
  | Not_in_batch ->
      "payload/output pair absent from the quoted session's claimed I/O"

let pp_verify_failure fmt f =
  Format.pp_print_string fmt (verify_failure_to_string f)

(* the serving tier's own attested PAL: same batched-echo semantics as
   the fleet workload, but every session runs under a verifier nonce and
   is quoted, so each result ships with reusable evidence *)
let serve_pal =
  lazy
    (Pal.define ~name:"serve-echo" (fun env ->
         match Util.decode_fields env.Pal_env.inputs with
         | Ok (work :: items) when items <> [] ->
             (match float_of_string_opt work with
             | Some ms when ms > 0.0 ->
                 Pal_env.compute env ~ms:(ms *. float_of_int (List.length items))
             | _ -> ());
             Pal_env.set_output env
               (Util.encode_fields (List.map (fun s -> "echo:" ^ s) items))
         | Ok _ | Error _ -> Pal_env.set_output env "ERROR: malformed serve batch"))

type t = {
  cfg : config;
  fleet : Fleet.t;
  cache : bundle Cache.t;
  appraiser : Appraise.t;
  metrics : Metrics.t;
  boots : int array;  (* per-platform reboot epoch (power cycles seen) *)
  nvs : int array;  (* per-platform NV-counter epoch *)
  (* request id -> the bundle that served it (hit) or was minted for it
     (miss); requests that failed or were rejected are absent *)
  bundles : (int, bundle) Hashtbl.t;
  code_id : string ref;  (* hex PCR-17 launch composite of [serve_pal] *)
  indices : (Platform.t * int) list ref;  (* physical platform -> index *)
}

(* --- cache key -------------------------------------------------------- *)

(* (PCR-17 measurement composite, input hash): the launch-time composite
   names the code identity — any PAL or SLB change re-keys the whole
   cache — and the payload digest names the input *)
let key_of_payload ~code_id payload = code_id ^ "/" ^ Sha1.hex payload

let cache_key t payload = key_of_payload ~code_id:!(t.code_id) payload

(* --- attested execution ---------------------------------------------- *)

(* split items greedily so each chunk's encoded inputs and outputs fit
   their 4 KB pages (same arithmetic as Workload.echo) *)
let chunk_by ~payload items =
  let page = Layout.io_page_size in
  let base = 4 + String.length (Printf.sprintf "%.3f" 1.0) + 16 in
  let cost item = 4 + String.length (payload item) + 9 in
  let rec take used acc = function
    | [] -> (List.rev acc, [])
    | item :: rest ->
        let c = cost item in
        if acc <> [] && used + c > page then (List.rev acc, item :: rest)
        else take (used + c) (item :: acc) rest
  in
  let rec split = function
    | [] -> []
    | items ->
        let chunk, rest = take base [] items in
        chunk :: split rest
  in
  split items

let chunk_payloads payloads = chunk_by ~payload:Fun.id payloads
let chunk_requests requests =
  chunk_by ~payload:(fun r -> r.Request.payload) requests

(* run one page-sized chunk in a single attested session: execute under a
   fresh verifier nonce, quote PCR 17 once for the whole chunk, and mint
   one verifiable bundle per payload, all sharing that quote *)
let run_chunk ~work_ms ~boots ~nvs platform index payloads :
    ((string * bundle) list, string) result =
  let pal = Lazy.force serve_pal in
  let inputs =
    Util.encode_fields (Printf.sprintf "%.3f" work_ms :: payloads)
  in
  if String.length inputs > Layout.io_page_size then
    Error "payload exceeds the 4 KB input page"
  else begin
    let nonce = Platform.fresh_nonce platform in
    match
      Session.retry_busy platform (fun () ->
          Session.execute platform ~pal ~inputs ~nonce ())
    with
    | Error e -> Error (Format.asprintf "%a" Session.pp_error e)
    | Ok outcome -> (
        let outputs = outcome.Session.outputs in
        match Util.decode_fields outputs with
        | Ok outs when List.length outs = List.length payloads ->
            let evidence =
              Attestation.generate platform ~nonce ~inputs ~outputs
            in
            let pcr17 =
              match
                List.assoc_opt 17
                  evidence.Attestation.quote.Tpm.quoted_composite
              with
              | Some d -> d
              | None -> ""
            in
            let quoted_at_ms = Platform.now_ms platform in
            Ok
              (List.map2
                 (fun payload output ->
                   ( output,
                     {
                       output;
                       payload;
                       nonce;
                       evidence;
                       pcr17;
                       platform = index;
                       boots = boots.(index);
                       nv = nvs.(index);
                       quoted_at_ms;
                     } ))
                 payloads outs)
        | Ok _ | Error _ -> Error "malformed serve output")
  end

(* --- creation --------------------------------------------------------- *)

let index_of indices platform =
  match List.find_opt (fun (p, _) -> p == platform) !indices with
  | Some (_, i) -> i
  | None -> failwith "Serve: platform was never prepared"

let fresh t (b : bundle) =
  b.boots = t.boots.(b.platform) && b.nv = t.nvs.(b.platform)

let intercept t (req : Request.t) =
  (* sealed-affinity homing: a homed request must reach its platform's
     sealed state — a cached result would silently skip it *)
  if req.Request.home <> None && not t.cfg.cache_homed then None
  else begin
    let key = cache_key t req.Request.payload in
    match Cache.find t.cache ~now_ms:(Fleet.now_ms t.fleet) key with
    | None ->
        Metrics.incr t.metrics "serve.cache.misses";
        None
    | Some b when not (fresh t b) ->
        (* the quoting platform rebooted or advanced its NV counter since
           this entry was minted: its trust state changed, so the entry
           must never be served. The crash hook sweeps eagerly; this is
           the backstop that makes staleness structural. *)
        ignore
          (Cache.remove_if t.cache (fun k _ -> String.equal k key));
        Metrics.incr t.metrics "serve.cache.stale_rejected";
        Metrics.incr t.metrics "serve.cache.misses";
        None
    | Some b ->
        Metrics.incr t.metrics "serve.cache.hits";
        Hashtbl.replace t.bundles req.Request.id b;
        Some b.output
  end

let invalidate_platform t i ~reason =
  let dropped = Cache.remove_if t.cache (fun _ b -> b.platform = i) in
  if dropped > 0 then
    Metrics.incr t.metrics ("serve.cache.invalidated_" ^ reason) ~by:dropped;
  dropped

let on_crash t i =
  t.boots.(i) <- t.boots.(i) + 1;
  ignore (invalidate_platform t i ~reason:"reboot")

let advance_nv t i =
  if i < 0 || i >= Array.length t.nvs then
    invalid_arg "Serve.advance_nv: platform index outside fleet";
  t.nvs.(i) <- t.nvs.(i) + 1;
  ignore (invalidate_platform t i ~reason:"nv")

let create ?(config = default_config) ?(warm = []) () =
  let metrics = Metrics.create () in
  let cache =
    Cache.create ~capacity:config.cache_capacity ?ttl_ms:config.cache_ttl_ms ()
  in
  let n = config.fleet.Fleet.platforms in
  let boots = Array.make n 0 in
  let nvs = Array.make n 0 in
  let bundles = Hashtbl.create 64 in
  let code_id = ref "" in
  let indices = ref [] in
  let ensure_code_id platform =
    if !code_id = "" then begin
      let image = Builder.build (Lazy.force serve_pal) in
      code_id :=
        Util.to_hex
          (Measurement.after_launch image
             ~slb_base:platform.Platform.slb_base)
    end
  in
  let record_chunk platform results =
    List.iter
      (fun (_, b) ->
        Cache.insert cache ~now_ms:(Platform.now_ms platform)
          (key_of_payload ~code_id:!code_id b.payload)
          b)
      results
  in
  let prepare platform i =
    indices := (platform, i) :: !indices;
    ensure_code_id platform;
    (* warm entries are minted during provisioning — before the fleet's
       clock starts and before fault injectors are installed — through
       the same attested path as live traffic, so they verify like any
       other bundle *)
    let mine =
      List.filteri (fun k _ -> k mod n = i) warm
    in
    List.iter
      (fun chunk ->
        match
          run_chunk ~work_ms:config.work_ms ~boots ~nvs platform i chunk
        with
        | Ok results -> record_chunk platform results
        | Error e -> failwith ("Serve: warming failed: " ^ e))
      (chunk_payloads mine)
  in
  let run_batch platform (requests : Request.t list) =
    let i = index_of indices platform in
    List.concat_map
      (fun (chunk : Request.t list) ->
        let payloads = List.map (fun r -> r.Request.payload) chunk in
        match run_chunk ~work_ms:config.work_ms ~boots ~nvs platform i payloads with
        | Error e -> List.map (fun _ -> Error e) chunk
        | Ok results ->
            record_chunk platform results;
            List.map2
              (fun (r : Request.t) (output, b) ->
                Hashtbl.replace bundles r.Request.id b;
                Ok output)
              chunk results)
      (chunk_requests requests)
  in
  let workload = { Workload.name = "attested-echo"; prepare; run_batch } in
  let fleet = Fleet.create ~config:config.fleet workload in
  let t =
    {
      cfg = config;
      fleet;
      cache;
      appraiser = Appraise.create ~ca_key:(Fleet.verifier_key fleet) ();
      metrics;
      boots;
      nvs;
      bundles;
      code_id;
      indices;
    }
  in
  Fleet.set_interceptor fleet (intercept t);
  Fleet.add_crash_hook fleet (on_crash t);
  t

(* --- verification ----------------------------------------------------- *)

(* is (payload, output) one of the positional pairs the quoted session
   actually served? The quote covers the whole chunk's encoded I/O. *)
let in_batch (b : bundle) =
  let ev = b.evidence in
  match
    ( Util.decode_fields ev.Attestation.claimed_inputs,
      Util.decode_fields ev.Attestation.claimed_outputs )
  with
  | Ok (_work :: ins), Ok outs when List.length ins = List.length outs ->
      List.exists2
        (fun i o -> String.equal i b.payload && String.equal o b.output)
        ins outs
  | _ -> false

let verify_bundle t (b : bundle) =
  if not (fresh t b) then
    Error
      (Stale
         (Printf.sprintf
            "platform %d changed trust state since the quote (reboot or NV \
             advance)"
            b.platform))
  else begin
    let expectation =
      Verifier.expect ~pal:(Lazy.force serve_pal)
        ~slb_base:(Fleet.platform t.fleet b.platform).Platform.slb_base
        ~nonce:b.nonce ()
    in
    match Appraise.verify t.appraiser expectation b.evidence with
    | Error f -> Error (Crypto f)
    | Ok () -> if in_batch b then Ok () else Error Not_in_batch
  end

(* --- accessors -------------------------------------------------------- *)

let fleet t = t.fleet
let config t = t.cfg
let appraiser t = t.appraiser
let bundle_for t id = Hashtbl.find_opt t.bundles id
let cached t payload =
  match
    Cache.find t.cache ~now_ms:(Fleet.now_ms t.fleet) (cache_key t payload)
  with
  | Some b -> fresh t b
  | None -> false

let cache_length t = Cache.length t.cache
let cache_stats t = Cache.stats t.cache

(* reconcile the registry with the cache's and appraiser's own running
   stats, then hand it out: counters are monotonic, so topping them up
   by the delta keeps [incr]-site counts and swept counts consistent *)
let metrics t =
  let top_up name target =
    let have = Metrics.counter t.metrics name in
    if target > have then Metrics.incr t.metrics name ~by:(target - have)
  in
  let cs = Cache.stats t.cache in
  top_up "serve.cache.insertions" cs.Cache.insertions;
  top_up "serve.cache.evictions" cs.Cache.evictions;
  top_up "serve.cache.expirations" cs.Cache.expirations;
  top_up "serve.cache.invalidations" cs.Cache.invalidations;
  let aps = Appraise.stats t.appraiser in
  top_up "serve.memo.cert_hits" aps.Appraise.cert_hits;
  top_up "serve.memo.cert_misses" aps.Appraise.cert_misses;
  top_up "serve.memo.quote_hits" aps.Appraise.quote_hits;
  top_up "serve.memo.quote_misses" aps.Appraise.quote_misses;
  top_up "serve.memo.bytes_saved" aps.Appraise.bytes_saved;
  t.metrics
