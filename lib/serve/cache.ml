(* Deterministic LRU + TTL cache over string keys.

   Everything is a pure function of the operation sequence and the
   virtual clock values passed in: no wall clock, no randomness, no
   dependence on [Hashtbl] iteration order (recency is tracked by a
   monotonic tick, and the eviction scan breaks ties — which cannot
   occur, ticks being unique — by smallest tick). That determinism is
   what lets the serve bench promise byte-identical JSON across runs. *)

type 'a entry = {
  value : 'a;
  expires_at : float option;  (* absolute virtual ms; [None] = no TTL *)
  mutable last_used : int;  (* recency tick; strictly increasing *)
}

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;  (* LRU capacity evictions *)
  expirations : int;  (* entries dropped because their TTL had passed *)
  invalidations : int;  (* entries dropped by [remove_if] sweeps *)
}

type 'a t = {
  capacity : int;
  ttl_ms : float option;
  table : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable expirations : int;
  mutable invalidations : int;
}

let create ?(capacity = 1024) ?ttl_ms () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  (match ttl_ms with
  | Some ttl when ttl <= 0.0 -> invalid_arg "Cache.create: TTL must be positive"
  | _ -> ());
  {
    capacity;
    ttl_ms;
    table = Hashtbl.create (min capacity 64);
    tick = 0;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    expirations = 0;
    invalidations = 0;
  }

let length t = Hashtbl.length t.table

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let expired entry ~now_ms =
  match entry.expires_at with Some e -> now_ms > e | None -> false

let find t ~now_ms key =
  match Hashtbl.find_opt t.table key with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some entry when expired entry ~now_ms ->
      Hashtbl.remove t.table key;
      t.expirations <- t.expirations + 1;
      t.misses <- t.misses + 1;
      None
  | Some entry ->
      entry.last_used <- next_tick t;
      t.hits <- t.hits + 1;
      Some entry.value

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best.last_used <= entry.last_used -> acc
        | _ -> Some (key, entry))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1

let insert t ~now_ms key value =
  let entry =
    {
      value;
      expires_at = Option.map (fun ttl -> now_ms +. ttl) t.ttl_ms;
      last_used = next_tick t;
    }
  in
  let fresh = not (Hashtbl.mem t.table key) in
  Hashtbl.replace t.table key entry;
  t.insertions <- t.insertions + 1;
  if fresh then
    while Hashtbl.length t.table > t.capacity do
      evict_lru t
    done

let remove_if t pred =
  let doomed =
    Hashtbl.fold
      (fun key entry acc -> if pred key entry.value then key :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) doomed;
  let n = List.length doomed in
  t.invalidations <- t.invalidations + n;
  n

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    insertions = t.insertions;
    evictions = t.evictions;
    expirations = t.expirations;
    invalidations = t.invalidations;
  }
