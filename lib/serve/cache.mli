(** Deterministic LRU + TTL cache over string keys.

    The serving tier's result store: bounded capacity with
    least-recently-used eviction, per-entry expiry against the {e
    virtual} clock (callers pass [now_ms]; the cache never reads a wall
    clock), and predicate invalidation sweeps for trust-state changes
    (platform reboot, NV counter advance). Every operation is a pure
    function of the call sequence and the clock values passed in — no
    randomness, no [Hashtbl] iteration-order dependence — so two
    identically seeded serve runs behave byte-identically. *)

type 'a t

val create : ?capacity:int -> ?ttl_ms:float -> unit -> 'a t
(** [capacity] defaults to 1024; exceeding it evicts the
    least-recently-used entry. [ttl_ms] (no expiry when absent) is
    relative to each entry's insertion instant. @raise Invalid_argument
    on a capacity < 1 or a non-positive TTL. *)

val find : 'a t -> now_ms:float -> string -> 'a option
(** Lookup at virtual instant [now_ms]. A present entry whose TTL has
    passed is dropped and counted as an expiration plus a miss — an
    instant exactly at the expiry is still a hit, matching the fleet's
    deadline-boundary convention. A hit refreshes the entry's
    recency. *)

val insert : 'a t -> now_ms:float -> string -> 'a -> unit
(** Insert (or overwrite) at virtual instant [now_ms], then evict LRU
    entries while over capacity. *)

val remove_if : 'a t -> (string -> 'a -> bool) -> int
(** Drop every entry matching the predicate; returns how many, which is
    also added to the invalidation count. *)

val length : 'a t -> int

type stats = {
  hits : int;
  misses : int;  (** includes lookups that found only an expired entry *)
  insertions : int;
  evictions : int;  (** LRU capacity evictions *)
  expirations : int;  (** TTL drops, counted at lookup time *)
  invalidations : int;  (** entries removed by {!remove_if} sweeps *)
}

val stats : 'a t -> stats
