(** The Platform Configuration Register bank.

    24 registers. PCRs 0–16 are static: only a reboot resets them (to
    zero). PCRs 17–23 are dynamic: a reboot sets them to -1 and only the
    chipset — acting on SKINIT — can reset them to zero without a reboot
    (Section 2.3). Software can extend any PCR but never directly write
    one; that asymmetry is what makes PCR 17 attest to a genuine late
    launch. *)

type change =
  | Extended of { index : int; kind : string; value : Tpm_types.digest }
      (** [kind] labels who extended and why: "measure" (SKINIT's SLB
          transmission), "stub" (the optimized stub's window hash),
          "input"/"output"/"nonce" (session I/O extends), "cap" (the
          session-close cap), or "software" (any unlabeled command-path
          extend). The protocol verifier's extend-order automaton keys
          on these labels. *)
  | Dynamic_reset
  | Rebooted

type t

val set_notify : t -> (change -> unit) -> unit
(** Observe every mutation of the bank (the TPM wires this to the
    machine tracer so extends/resets become protocol trace events). *)

val count : int
(** 24 (TPM v1.2). *)

val first_dynamic : int
(** 17. *)

val create : unit -> t
(** Bank in post-reboot state. *)

val reboot : t -> unit
(** Static PCRs to zero, dynamic PCRs to -1. *)

val dynamic_reset : t -> unit
(** Chipset-initiated (SKINIT) reset of PCRs 17–23 to zero. Not reachable
    from the software-facing command interface. *)

val read : t -> int -> (Tpm_types.digest, Tpm_types.error) result

val extend :
  ?kind:string -> t -> int -> Tpm_types.digest -> (Tpm_types.digest, Tpm_types.error) result
(** [extend t i m] sets [PCR_i <- SHA1(PCR_i || m)] and returns the new
    value. [m] must be exactly 20 bytes. [kind] (default ["software"])
    labels the change notice; see {!change}. *)

val composite : t -> Tpm_types.pcr_selection -> Tpm_types.pcr_composite
(** Snapshot the selected PCRs. *)

val expected_extend : current:Tpm_types.digest -> Tpm_types.digest -> Tpm_types.digest
(** The pure extend function, exposed so verifiers can replay event logs. *)
