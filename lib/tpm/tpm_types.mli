(** Shared structures for the TPM v1.2 simulator. *)

type digest = string
(** Always 20 bytes (SHA-1). *)

val digest_size : int
val zero_digest : digest
(** 20 zero bytes: the value of a dynamic PCR right after SKINIT. *)

val reboot_digest : digest
(** 20 [0xff] bytes: the "-1" a reboot writes into PCRs 17–23 so a
    verifier can distinguish a reboot from a dynamic reset (Section 2.3). *)

type pcr_selection = int list
(** Sorted, duplicate-free PCR indices. Build with [selection]. *)

val selection : int list -> pcr_selection
(** @raise Invalid_argument on an index outside 0–23. *)

type pcr_composite = (int * digest) list
(** Selected PCR indices with their values at composite time. *)

val composite_hash : pcr_composite -> digest
(** TPM_COMPOSITE_HASH over the serialized selection and values. *)

type error =
  | Bad_auth  (** HMAC authorization failed *)
  | Wrong_pcr_value  (** release condition not met (TPM_WRONGPCRVAL) *)
  | Bad_index  (** no such PCR / NV space / counter / key handle *)
  | Bad_parameter of string
  | Locality_violation  (** command issued from an unauthorized locality *)
  | Decrypt_error  (** sealed blob corrupt or not sealed by this TPM *)
  | Area_exists  (** NV space already defined *)
  | Tpm_busy
      (** transient TPM_RETRY: the command did not execute and can be
          reissued — real 1.2 parts return this under self-test or
          resource pressure; the fault injector uses it for transient
          command errors *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type locality = int
(** 0–4. SKINIT-initiated commands arrive at locality 4. *)

val owner_auth_size : int
(** 20 bytes of TPM Owner Authorization Data. *)
