open Flicker_crypto

type digest = string

let digest_size = 20
let zero_digest = String.make digest_size '\000'
let reboot_digest = String.make digest_size '\xff'

type pcr_selection = int list

let selection indices =
  let sorted = List.sort_uniq Int.compare indices in
  List.iter
    (fun i -> if i < 0 || i > 23 then invalid_arg "Tpm_types.selection: PCR index out of range")
    sorted;
  sorted

type pcr_composite = (int * digest) list

let composite_hash composite =
  let buf = Buffer.create 64 in
  List.iter
    (fun (idx, value) ->
      Buffer.add_string buf (Util.be32_of_int idx);
      Buffer.add_string buf value)
    (List.sort (fun (a, _) (b, _) -> Int.compare a b) composite);
  Sha1.digest (Buffer.contents buf)

type error =
  | Bad_auth
  | Wrong_pcr_value
  | Bad_index
  | Bad_parameter of string
  | Locality_violation
  | Decrypt_error
  | Area_exists
  | Tpm_busy

let error_to_string = function
  | Bad_auth -> "TPM_AUTHFAIL"
  | Wrong_pcr_value -> "TPM_WRONGPCRVAL"
  | Bad_index -> "TPM_BADINDEX"
  | Bad_parameter s -> "TPM_BAD_PARAMETER: " ^ s
  | Locality_violation -> "TPM_BAD_LOCALITY"
  | Decrypt_error -> "TPM_DECRYPT_ERROR"
  | Area_exists -> "TPM_NV_AREA_EXISTS"
  | Tpm_busy -> "TPM_RETRY"

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

type locality = int

let owner_auth_size = 20
