open Flicker_crypto

let count = 24
let first_dynamic = 17

type change =
  | Extended of { index : int; kind : string; value : Tpm_types.digest }
  | Dynamic_reset
  | Rebooted

type t = { values : Tpm_types.digest array; mutable notify : (change -> unit) option }

let set_notify t f = t.notify <- Some f
let notice t c = match t.notify with Some f -> f c | None -> ()

let reboot t =
  for i = 0 to first_dynamic - 1 do
    t.values.(i) <- Tpm_types.zero_digest
  done;
  for i = first_dynamic to count - 1 do
    t.values.(i) <- Tpm_types.reboot_digest
  done;
  notice t Rebooted

let create () =
  let t = { values = Array.make count Tpm_types.zero_digest; notify = None } in
  reboot t;
  t

let dynamic_reset t =
  for i = first_dynamic to count - 1 do
    t.values.(i) <- Tpm_types.zero_digest
  done;
  notice t Dynamic_reset

let read t i =
  if i < 0 || i >= count then Error Tpm_types.Bad_index else Ok t.values.(i)

let expected_extend ~current m = Sha1.digest (current ^ m)

let extend ?(kind = "software") t i m =
  if i < 0 || i >= count then Error Tpm_types.Bad_index
  else if String.length m <> Tpm_types.digest_size then
    Error (Tpm_types.Bad_parameter "extend value must be a 20-byte digest")
  else begin
    t.values.(i) <- expected_extend ~current:t.values.(i) m;
    notice t (Extended { index = i; kind; value = m });
    Ok t.values.(i)
  end

let composite t sel = List.map (fun i -> (i, t.values.(i))) sel
