(** The TPM v1.2 device: command-level facade over the PCR bank, key
    hierarchy, NV storage, counters, and authorization sessions.

    Every command charges its calibrated latency (from the machine's
    {!Flicker_hw.Timing} profile) against the simulated clock, so the
    paper's TPM-dominated measurements fall out of the model. All
    cryptography is real: quotes verify under the AIK public key, sealed
    blobs are AES+HMAC wrapped under keys derived from the SRK private
    key (the v1.2 spec uses RSA-OAEP under the SRK for small payloads;
    the symmetric wrapping preserves the trust property — only this TPM
    can unseal — without the size limit). *)

type t

type authorization = { session : int; nonce_odd : string; mac : string }
(** Client proof of knowledge of an entity secret, computed with
    {!Auth.auth_mac}. *)

type quote = {
  quoted_composite : Tpm_types.pcr_composite;
  quote_nonce : string;
  signature : string;  (** AIK signature over ["QUOT" || composite_hash || nonce] *)
}

val create :
  ?owner_auth:string ->
  ?srk_auth:string ->
  Flicker_hw.Machine.t ->
  Flicker_crypto.Prng.t ->
  key_bits:int ->
  t
(** Manufacture a TPM attached to [machine] (for its clock and timing
    profile). Generates the EK/SRK/AIK hierarchy. [owner_auth] defaults to
    the well-known secret. *)

val skinit_hooks : t -> Flicker_hw.Machine.tpm_hooks
(** The chipset-facing interface SKINIT drives; pass to
    [Machine.set_tpm_hooks]. Not reachable from the software command set. *)

val reboot : t -> unit
(** Platform reset: static PCRs to zero, dynamic PCRs to -1, sessions
    dropped. NV storage, counters, and keys persist. *)

val aik_public : t -> Flicker_crypto.Rsa.public
val ek_public : t -> Flicker_crypto.Rsa.public
val owner_auth : t -> string
val srk_auth : t -> string

(** {1 PCR commands} *)

val pcr_read : t -> int -> (Tpm_types.digest, Tpm_types.error) result

val pcr_extend :
  ?kind:string -> t -> int -> Tpm_types.digest -> (Tpm_types.digest, Tpm_types.error) result
(** [kind] (default ["software"]) labels the protocol trace event; the
    session layer passes "stub"/"input"/"output"/"nonce"/"cap" so the
    extend-order automaton can check the Section 4–5 discipline. *)

val pcr_composite : t -> Tpm_types.pcr_selection -> Tpm_types.pcr_composite

(** {1 Random numbers} *)

val get_random : t -> int -> string

(** {1 Attestation} *)

val quote : t -> nonce:string -> selection:Tpm_types.pcr_selection -> quote
(** TPM_Quote with the AIK. The nonce must be 20 bytes.
    @raise Invalid_argument on a bad nonce. *)

(** {1 Authorization sessions} *)

val oiap : t -> Auth.session
val osap : t -> entity:string -> no_osap:string -> (Auth.session * string, Tpm_types.error) result
(** Only entity ["SRK"] is defined in this simulator. Returns the session
    and [ne_osap]. *)

val close_session : t -> int -> unit

(** {1 Sealed storage}

    [seal] binds data to a future PCR state: the blob unseals only when
    the selected PCRs hold the digest-at-release values. Both commands
    require an authorization for the SRK (OSAP recommended). The command
    digests are [seal_command_digest]/[unseal_command_digest]. *)

val seal :
  t ->
  auth:authorization ->
  release:Tpm_types.pcr_composite ->
  string ->
  (string, Tpm_types.error) result

val unseal : t -> auth:authorization -> string -> (string, Tpm_types.error) result

val seal_command_digest : release:Tpm_types.pcr_composite -> data:string -> string
val unseal_command_digest : blob:string -> string

(** {1 NV storage (owner-authorized definition)} *)

val nv_define_space :
  t ->
  auth:authorization ->
  index:int ->
  Nvram.space_attributes ->
  (unit, Tpm_types.error) result

val nv_read : t -> index:int -> (string, Tpm_types.error) result
val nv_write : t -> index:int -> string -> (unit, Tpm_types.error) result
val nv_define_command_digest : index:int -> Nvram.space_attributes -> string

(** {1 Monotonic counters} *)

val create_counter :
  t -> auth:authorization -> label:string -> (int, Tpm_types.error) result

val increment_counter : t -> handle:int -> (int, Tpm_types.error) result
val read_counter : t -> handle:int -> (int, Tpm_types.error) result
val counter_command_digest : label:string -> string

(** {1 Capabilities} *)

val get_capability_version : t -> string
val get_capability_pcr_count : t -> int
