open Flicker_crypto
module Machine = Flicker_hw.Machine
module Timing = Flicker_hw.Timing

type t = {
  machine : Machine.t;
  rng : Prng.t;
  pcrs : Pcr.t;
  keys : Keys.t;
  nvram : Nvram.t;
  counters : Counter.t;
  mutable auth_sessions : Auth.t;
  owner_auth : string;
  seal_enc_key : Aes.key;
  seal_mac_key : string;
}

type authorization = { session : int; nonce_odd : string; mac : string }

type quote = {
  quoted_composite : Tpm_types.pcr_composite;
  quote_nonce : string;
  signature : string;
}

let profile t = t.machine.Machine.timing.Timing.tpm

(* One fault decision per command invocation, drawn from the machine's
   injector (if any) at the current virtual time. *)
let injected_fault t op =
  match Machine.injector t.machine with
  | None -> Flicker_fault.Injector.No_fault
  | Some inj ->
      Flicker_fault.Injector.tpm_fault inj ~op
        ~now_ms:(Flicker_hw.Clock.now t.machine.Machine.clock)

(* Every TPM command advances the simulated clock and records one count
   plus the charged latency under tpm.<command>.{count,ms}. An injected
   latency spike stretches the charge; the recorded ms is what was
   actually charged, so chaos runs show up in the histograms. *)
let charge_op ?(fault = Flicker_fault.Injector.No_fault) t op ms =
  let ms =
    match fault with
    | Flicker_fault.Injector.Slow factor ->
        Machine.fault_event t.machine "fault.tpm.slow"
          ~args:[ ("op", Flicker_obs.Tracer.Str op) ];
        Flicker_obs.Metrics.incr t.machine.Machine.metrics "fault.tpm.slow";
        ms *. factor
    | _ -> ms
  in
  Machine.charge t.machine ms;
  let metrics = t.machine.Machine.metrics in
  Flicker_obs.Metrics.incr metrics ("tpm." ^ op ^ ".count");
  Flicker_obs.Metrics.observe metrics ("tpm." ^ op ^ ".ms") ms

(* Charge a result-returning command and decide whether it instead dies
   with a transient TPM_RETRY. Commands whose callers treat errors as
   fatal protocol violations (pcr_extend inside a session) charge through
   [charge_op] directly and only ever see latency faults. *)
let charged t op ms =
  let fault = injected_fault t op in
  charge_op ~fault t op ms;
  match fault with
  | Flicker_fault.Injector.Busy ->
      Machine.fault_event t.machine "fault.tpm.busy"
        ~args:[ ("op", Flicker_obs.Tracer.Str op) ];
      Flicker_obs.Metrics.incr t.machine.Machine.metrics "fault.tpm.busy";
      Error Tpm_types.Tpm_busy
  | _ -> Ok ()

(* Sealed-storage wrapping keys, derived from the SRK private key so that
   unsealing is possible only on this TPM. *)
let derive_seal_keys srk =
  let secret = Rsa.private_to_string srk in
  let enc = String.sub (Sha256.digest ("tpm-seal-enc" ^ secret)) 0 16 in
  let mac = Sha256.digest ("tpm-seal-mac" ^ secret) in
  (Aes.expand_key enc, mac)

let create ?owner_auth ?srk_auth machine rng ~key_bits =
  let owner_auth =
    match owner_auth with Some a -> a | None -> Keys.well_known_auth
  in
  if String.length owner_auth <> Tpm_types.owner_auth_size then
    invalid_arg "Tpm.create: owner auth must be 20 bytes";
  let keys = Keys.generate ?srk_auth rng ~key_bits in
  let seal_enc_key, seal_mac_key = derive_seal_keys keys.Keys.srk in
  let pcrs = Pcr.create () in
  (* PCR mutations were previously silent state changes; surface them as
     protocol instants so the temporal verifier can check extend order *)
  Pcr.set_notify pcrs (fun change ->
      match change with
      | Pcr.Extended { index; kind; value } ->
          Machine.protocol_event machine "pcr.extend"
            ~args:
              [
                ("index", Flicker_obs.Tracer.Count index);
                ("kind", Flicker_obs.Tracer.Str kind);
                ("value", Flicker_obs.Tracer.Str (Flicker_crypto.Util.to_hex (String.sub value 0 4)));
              ]
      | Pcr.Dynamic_reset -> Machine.protocol_event machine "pcr.reset"
      | Pcr.Rebooted -> Machine.protocol_event machine "pcr.reboot");
  {
    machine;
    rng;
    pcrs;
    keys;
    nvram = Nvram.create ();
    counters = Counter.create ();
    auth_sessions = Auth.create (Prng.fork rng ~label:"tpm-auth");
    owner_auth;
    seal_enc_key;
    seal_mac_key;
  }

let skinit_hooks t =
  {
    Machine.dynamic_pcr_reset = (fun () -> Pcr.dynamic_reset t.pcrs);
    measure_into_pcr17 =
      (fun slb_contents ->
        let measurement = Sha1.digest slb_contents in
        match Pcr.extend ~kind:"measure" t.pcrs 17 measurement with
        | Ok _ -> ()
        | Error e -> failwith ("TPM: PCR 17 extend failed: " ^ Tpm_types.error_to_string e));
  }

let reboot t =
  Pcr.reboot t.pcrs;
  t.auth_sessions <- Auth.create (Prng.fork t.rng ~label:"tpm-auth-reboot")

let aik_public t = Keys.aik_public t.keys
let ek_public t = Keys.ek_public t.keys
let owner_auth t = t.owner_auth
let srk_auth t = t.keys.Keys.srk_auth

let pcr_read t i =
  match charged t "pcr_read" (profile t).Timing.pcr_read_ms with
  | Error e -> Error e
  | Ok () -> Pcr.read t.pcrs i

let pcr_extend ?kind t i m =
  (* latency faults only: session code treats an extend error as a fatal
     protocol violation, so a transient here could never be retried *)
  charge_op ~fault:(injected_fault t "pcr_extend") t "pcr_extend"
    (profile t).Timing.pcr_extend_ms;
  Pcr.extend ?kind t.pcrs i m

let pcr_composite t sel = Pcr.composite t.pcrs sel

let get_random t n =
  charge_op ~fault:(injected_fault t "get_random") t "get_random"
    (Timing.get_random_ms t.machine.Machine.timing ~bytes:n);
  Prng.bytes t.rng n

let quote t ~nonce ~selection =
  if String.length nonce <> Tpm_types.digest_size then
    invalid_arg "Tpm.quote: nonce must be 20 bytes";
  charge_op ~fault:(injected_fault t "quote") t "quote" (profile t).Timing.quote_ms;
  let composite = Pcr.composite t.pcrs selection in
  let payload = "QUOT" ^ Tpm_types.composite_hash composite ^ nonce in
  let signature = Pkcs1.sign t.keys.Keys.aik Hash.SHA1 payload in
  { quoted_composite = composite; quote_nonce = nonce; signature }

let oiap t = Auth.start_oiap t.auth_sessions

let osap t ~entity ~no_osap =
  match entity with
  | "SRK" ->
      Ok (Auth.start_osap t.auth_sessions ~entity ~usage_auth:t.keys.Keys.srk_auth ~no_osap)
  | _ -> Error (Tpm_types.Bad_parameter ("unknown OSAP entity " ^ entity))

let close_session t handle = Auth.close t.auth_sessions handle

(* --- sealed storage --- *)

let field s = Util.be32_of_int (String.length s) ^ s

let fields_exn s =
  let rec go off acc =
    if off = String.length s then List.rev acc
    else begin
      let len = Util.int_of_be32 s off in
      go (off + 4 + len) (String.sub s (off + 4) len :: acc)
    end
  in
  go 0 []

let serialize_composite composite =
  String.concat ""
    (List.map (fun (i, v) -> Util.be32_of_int i ^ field v) composite)

let deserialize_composite s =
  let rec go off acc =
    if off = String.length s then List.rev acc
    else begin
      let idx = Util.int_of_be32 s off in
      let len = Util.int_of_be32 s (off + 4) in
      let v = String.sub s (off + 8) len in
      go (off + 8 + len) ((idx, v) :: acc)
    end
  in
  go 0 []

let seal_command_digest ~release ~data =
  Sha1.digest ("TPM_Seal" ^ serialize_composite release ^ data)

let unseal_command_digest ~blob = Sha1.digest ("TPM_Unseal" ^ blob)

let check_auth t ~auth ~entity_auth ~command_digest =
  Auth.verify t.auth_sessions ~handle:auth.session ~entity_auth ~command_digest
    ~nonce_odd:auth.nonce_odd ~mac:auth.mac

let seal t ~auth ~release data =
  match charged t "seal" (profile t).Timing.seal_ms with
  | Error e -> Error e
  | Ok () -> (
  let command_digest = seal_command_digest ~release ~data in
  match check_auth t ~auth ~entity_auth:t.keys.Keys.srk_auth ~command_digest with
  | Error e -> Error e
  | Ok () ->
      let payload = field (serialize_composite release) ^ field data in
      let iv = Prng.bytes t.rng 16 in
      let ct = Aes.encrypt_cbc t.seal_enc_key ~iv payload in
      let body = iv ^ ct in
      let tag = Hmac.mac Hash.SHA256 ~key:t.seal_mac_key body in
      Ok (tag ^ body))

let unseal t ~auth blob =
  match charged t "unseal" (profile t).Timing.unseal_ms with
  | Error e -> Error e
  | Ok () -> (
  let command_digest = unseal_command_digest ~blob in
  match check_auth t ~auth ~entity_auth:t.keys.Keys.srk_auth ~command_digest with
  | Error e -> Error e
  | Ok () ->
      if String.length blob < 32 + 16 + 16 then Error Tpm_types.Decrypt_error
      else begin
        let tag = String.sub blob 0 32 in
        let body = String.sub blob 32 (String.length blob - 32) in
        if not (Hmac.verify Hash.SHA256 ~key:t.seal_mac_key ~msg:body ~tag) then
          Error Tpm_types.Decrypt_error
        else begin
          let iv = String.sub body 0 16 in
          let ct = String.sub body 16 (String.length body - 16) in
          match Aes.decrypt_cbc t.seal_enc_key ~iv ct with
          | exception Invalid_argument _ -> Error Tpm_types.Decrypt_error
          | payload -> (
              match fields_exn payload with
              | [ release_raw; data ] ->
                  let release = deserialize_composite release_raw in
                  let current = Pcr.composite t.pcrs (List.map fst release) in
                  if
                    Tpm_types.composite_hash current
                    = Tpm_types.composite_hash release
                  then Ok data
                  else Error Tpm_types.Wrong_pcr_value
              | _ | (exception _) -> Error Tpm_types.Decrypt_error)
        end
      end)

(* --- NV storage --- *)

let nv_define_command_digest ~index (attrs : Nvram.space_attributes) =
  Sha1.digest
    ("TPM_NV_DefineSpace" ^ Util.be32_of_int index
    ^ Util.be32_of_int attrs.Nvram.size
    ^ serialize_composite attrs.Nvram.read_pcrs
    ^ serialize_composite attrs.Nvram.write_pcrs)

let nv_define_space t ~auth ~index attrs =
  match charged t "nv_define_space" (profile t).Timing.nv_write_ms with
  | Error e -> Error e
  | Ok () -> (
      let command_digest = nv_define_command_digest ~index attrs in
      match check_auth t ~auth ~entity_auth:t.owner_auth ~command_digest with
      | Error e -> Error e
      | Ok () -> Nvram.define_space t.nvram ~index attrs)

let current_pcrs t sel = Pcr.composite t.pcrs sel

let nv_read t ~index =
  match charged t "nv_read" (profile t).Timing.nv_read_ms with
  | Error e -> Error e
  | Ok () ->
  let r = Nvram.read t.nvram ~index ~current_pcrs:(current_pcrs t) in
  if Result.is_ok r then
    Machine.protocol_event t.machine "nv.read"
      ~args:[ ("index", Flicker_obs.Tracer.Count index) ];
  r

let nv_write t ~index data =
  match charged t "nv_write" (profile t).Timing.nv_write_ms with
  | Error e -> Error e
  | Ok () ->
  let r = Nvram.write t.nvram ~index ~current_pcrs:(current_pcrs t) data in
  if Result.is_ok r then begin
    (* 4-byte spaces are the replay-counter convention; carry the decoded
       value so the NV-monotonicity automaton can watch it advance *)
    let args = [ ("index", Flicker_obs.Tracer.Count index) ] in
    let args =
      if String.length data = 4 then
        args @ [ ("counter", Flicker_obs.Tracer.Count (Flicker_crypto.Util.int_of_be32 data 0)) ]
      else args
    in
    Machine.protocol_event t.machine "nv.write" ~args
  end;
  r

(* --- monotonic counters --- *)

let counter_command_digest ~label = Sha1.digest ("TPM_CreateCounter" ^ label)

let create_counter t ~auth ~label =
  match charged t "counter_create" (profile t).Timing.counter_increment_ms with
  | Error e -> Error e
  | Ok () -> (
      let command_digest = counter_command_digest ~label in
      match check_auth t ~auth ~entity_auth:t.owner_auth ~command_digest with
      | Error e -> Error e
      | Ok () -> Ok (Counter.create_counter t.counters ~label))

let increment_counter t ~handle =
  match charged t "counter_increment" (profile t).Timing.counter_increment_ms with
  | Error e -> Error e
  | Ok () ->
  let r = Counter.increment t.counters ~handle in
  (match r with
  | Ok value ->
      Machine.protocol_event t.machine "counter.increment"
        ~args:
          [
            ("handle", Flicker_obs.Tracer.Count handle);
            ("value", Flicker_obs.Tracer.Count value);
          ]
  | Error _ -> ());
  r

let read_counter t ~handle =
  match charged t "counter_read" (profile t).Timing.nv_read_ms with
  | Error e -> Error e
  | Ok () -> Counter.read t.counters ~handle

let get_capability_version t =
  charge_op ~fault:(injected_fault t "get_capability") t "get_capability"
    (profile t).Timing.pcr_read_ms;
  "TPM 1.2 rev 103 (simulated, " ^ (profile t).Timing.tpm_name ^ ")"

let get_capability_pcr_count t =
  charge_op ~fault:(injected_fault t "get_capability") t "get_capability"
    (profile t).Timing.pcr_read_ms;
  Pcr.count
